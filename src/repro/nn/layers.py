"""Network layers with forward, backward, and shape propagation.

All layers operate on batched arrays: the leading axis is the batch.  Dense
layers take ``(N, in_features)``; convolution and pooling take
``(N, C, H, W)``.  ``forward_cached`` returns the activations plus whatever
the backward pass needs, keeping layers stateless and re-entrant.

The backward convention: ``backward(cache, grad_out)`` returns
``(grad_in, param_grads)`` where ``param_grads`` aligns with ``params()``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.rng import as_generator


class Layer:
    """Base class for all layers."""

    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    def set_params(self, params: list[np.ndarray]) -> None:
        if params:
            raise ValueError(f"{type(self).__name__} takes no parameters")

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Output sample shape for the given input sample shape."""
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, _ = self.forward_cached(x)
        return out

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        raise NotImplementedError

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        raise NotImplementedError

    def backward_input(self, cache: Any, grad_out: np.ndarray) -> np.ndarray:
        """Input gradient only, skipping parameter-gradient work.

        Inference-time consumers (PGD, the influence feature) never read the
        parameter gradients, and for dense/conv layers those cost as much as
        the input gradient itself.  The default falls back to
        :meth:`backward`; layers with parameters override it.
        """
        return self.backward(cache, grad_out)[0]

    @property
    def is_linear(self) -> bool:
        """True when the layer computes an affine map of its input."""
        return False


class Dense(Layer):
    """Fully-connected layer ``y = W x + b``."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64).reshape(-1)
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {weight.shape}")
        if bias.size != weight.shape[0]:
            raise ValueError(
                f"bias size {bias.size} does not match {weight.shape[0]} outputs"
            )
        self.weight = weight
        self.bias = bias

    @staticmethod
    def initialize(
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = None,
    ) -> "Dense":
        """He-initialized dense layer (suits ReLU networks)."""
        gen = as_generator(rng)
        scale = np.sqrt(2.0 / in_features)
        weight = gen.normal(0.0, scale, size=(out_features, in_features))
        return Dense(weight, np.zeros(out_features))

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    @property
    def is_linear(self) -> bool:
        return True

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def set_params(self, params: list[np.ndarray]) -> None:
        weight, bias = params
        if weight.shape != self.weight.shape or bias.shape != self.bias.shape:
            raise ValueError("parameter shape mismatch")
        self.weight = np.asarray(weight, dtype=np.float64)
        self.bias = np.asarray(bias, dtype=np.float64)

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        if in_shape != (self.in_features,):
            raise ValueError(
                f"Dense expects input shape ({self.in_features},), got {in_shape}"
            )
        return (self.out_features,)

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        out = x @ self.weight.T + self.bias
        return out, x

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        x = cache
        grad_in = grad_out @ self.weight
        grad_w = grad_out.T @ x
        grad_b = grad_out.sum(axis=0)
        return grad_in, [grad_w, grad_b]

    def backward_input(self, cache: Any, grad_out: np.ndarray) -> np.ndarray:
        return grad_out @ self.weight


class ReLU(Layer):
    """Element-wise rectifier ``max(x, 0)``."""

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        return in_shape

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        mask = x > 0
        return x * mask, mask

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        return grad_out * cache, []


class ErrorPad(Layer):
    """Bounded per-unit error injection: ``y_j = x_j + e_j, |e_j| <= radii_j``
    with every ``e_j`` chosen independently by an adversary.

    The concrete forward pass picks ``e = 0`` (the identity), so sampled
    points and witnesses are unaffected; the abstract transformers widen
    dimension ``j`` outward by ``radii_j``.  :mod:`repro.abstract.netabs`
    uses this to carry merged-neuron over-approximation error, which is
    what makes the abstract network a strict over-approximation of the
    concrete one.
    """

    def __init__(self, radii: np.ndarray) -> None:
        radii = np.asarray(radii, dtype=np.float64).reshape(-1)
        if radii.size == 0:
            raise ValueError("ErrorPad needs at least one unit")
        if not np.all(np.isfinite(radii)) or (radii < 0).any():
            raise ValueError("ErrorPad radii must be finite and non-negative")
        self.radii = radii

    def params(self) -> list[np.ndarray]:
        return [self.radii]

    def set_params(self, params: list[np.ndarray]) -> None:
        (radii,) = params
        if radii.shape != self.radii.shape:
            raise ValueError("parameter shape mismatch")
        self.radii = np.asarray(radii, dtype=np.float64)

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        if in_shape != (self.radii.size,):
            raise ValueError(
                f"ErrorPad expects input shape ({self.radii.size},), got {in_shape}"
            )
        return in_shape

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        return x, None

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        return grad_out, [np.zeros_like(self.radii)]

    def backward_input(self, cache: Any, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Flatten(Layer):
    """Collapse a sample to a vector; the identity on already-flat input."""

    @property
    def is_linear(self) -> bool:
        return True

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(in_shape)),)

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        return x.reshape(x.shape[0], -1), x.shape

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        return grad_out.reshape(cache), []


def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _conv_out_hw(
    h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> tuple[int, int]:
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride {stride}, padding {padding}) "
            f"does not fit input {h}x{w}"
        )
    return out_h, out_w


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, C*kh*kw, out_h*out_w)`` columns."""
    n, c, h, w = x.shape
    out_h, out_w = _conv_out_hw(h, w, kh, kw, stride, padding)
    xp = _pad_input(x, padding)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = xp[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, out_h * out_w), (out_h, out_w)


def _col2im(
    cols: np.ndarray,
    in_shape: tuple[int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add columns back to an image."""
    c, h, w = in_shape
    n = cols.shape[0]
    out_h, out_w = _conv_out_hw(h, w, kh, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            xp[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


class Conv2d(Layer):
    """2-D convolution (cross-correlation) with square stride and padding."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64).reshape(-1)
        if weight.ndim != 4:
            raise ValueError(
                f"conv weight must be (out_c, in_c, kh, kw), got {weight.shape}"
            )
        if bias.size != weight.shape[0]:
            raise ValueError(
                f"bias size {bias.size} does not match {weight.shape[0]} channels"
            )
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        self.weight = weight
        self.bias = bias
        self.stride = stride
        self.padding = padding

    @staticmethod
    def initialize(
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: int | np.random.Generator | None = None,
    ) -> "Conv2d":
        gen = as_generator(rng)
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        weight = gen.normal(
            0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        return Conv2d(weight, np.zeros(out_channels), stride=stride, padding=padding)

    @property
    def is_linear(self) -> bool:
        return True

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def set_params(self, params: list[np.ndarray]) -> None:
        weight, bias = params
        if weight.shape != self.weight.shape or bias.shape != self.bias.shape:
            raise ValueError("parameter shape mismatch")
        self.weight = np.asarray(weight, dtype=np.float64)
        self.bias = np.asarray(bias, dtype=np.float64)

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(in_shape) != 3:
            raise ValueError(f"Conv2d expects (C, H, W) input, got {in_shape}")
        c, h, w = in_shape
        out_c, in_c, kh, kw = self.weight.shape
        if c != in_c:
            raise ValueError(f"Conv2d expects {in_c} channels, got {c}")
        out_h, out_w = _conv_out_hw(h, w, kh, kw, self.stride, self.padding)
        return (out_c, out_h, out_w)

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        out_c, in_c, kh, kw = self.weight.shape
        cols, (out_h, out_w) = _im2col(x, kh, kw, self.stride, self.padding)
        w_mat = self.weight.reshape(out_c, in_c * kh * kw)
        out = np.einsum("oc,ncp->nop", w_mat, cols) + self.bias[None, :, None]
        out = out.reshape(x.shape[0], out_c, out_h, out_w)
        return out, (cols, x.shape)

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        cols, x_shape = cache
        n, out_c = grad_out.shape[0], grad_out.shape[1]
        _, in_c, kh, kw = self.weight.shape
        grad_flat = grad_out.reshape(n, out_c, -1)
        w_mat = self.weight.reshape(out_c, in_c * kh * kw)
        grad_w = np.einsum("nop,ncp->oc", grad_flat, cols).reshape(self.weight.shape)
        grad_b = grad_flat.sum(axis=(0, 2))
        grad_cols = np.einsum("oc,nop->ncp", w_mat, grad_flat)
        grad_in = _col2im(
            grad_cols, x_shape[1:], kh, kw, self.stride, self.padding
        )
        return grad_in, [grad_w, grad_b]

    def backward_input(self, cache: Any, grad_out: np.ndarray) -> np.ndarray:
        _, x_shape = cache
        n, out_c = grad_out.shape[0], grad_out.shape[1]
        _, in_c, kh, kw = self.weight.shape
        grad_flat = grad_out.reshape(n, out_c, -1)
        w_mat = self.weight.reshape(out_c, in_c * kh * kw)
        grad_cols = np.einsum("oc,nop->ncp", w_mat, grad_flat)
        return _col2im(
            grad_cols, x_shape[1:], kh, kw, self.stride, self.padding
        )


class MaxPool2d(Layer):
    """Max pooling with a square window.

    ``stride`` defaults to the window size (non-overlapping pooling, as in
    LeNet).  The pooling geometry also drives the abstract transformer, via
    :meth:`window_indices`.
    """

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")

    def out_shape(self, in_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(in_shape) != 3:
            raise ValueError(f"MaxPool2d expects (C, H, W) input, got {in_shape}")
        c, h, w = in_shape
        k = self.kernel_size
        out_h, out_w = _conv_out_hw(h, w, k, k, self.stride, 0)
        return (c, out_h, out_w)

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, Any]:
        n, c, h, w = x.shape
        k = self.kernel_size
        out_h, out_w = _conv_out_hw(h, w, k, k, self.stride, 0)
        cols = np.empty((n, c, k * k, out_h, out_w), dtype=x.dtype)
        for i in range(k):
            i_end = i + self.stride * out_h
            for j in range(k):
                j_end = j + self.stride * out_w
                cols[:, :, i * k + j, :, :] = x[:, :, i:i_end:self.stride, j:j_end:self.stride]
        argmax = cols.argmax(axis=2)
        out = cols.max(axis=2)
        return out, (argmax, x.shape)

    def backward(
        self, cache: Any, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        argmax, x_shape = cache
        n, c, h, w = x_shape
        k = self.kernel_size
        out_h, out_w = grad_out.shape[2], grad_out.shape[3]
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        # Scatter each output gradient to the argmax position of its window.
        oh_idx, ow_idx = np.meshgrid(
            np.arange(out_h), np.arange(out_w), indexing="ij"
        )
        for ni in range(n):
            for ci in range(c):
                flat = argmax[ni, ci]
                di, dj = flat // k, flat % k
                rows = oh_idx * self.stride + di
                cols_ = ow_idx * self.stride + dj
                np.add.at(grad_in[ni, ci], (rows, cols_), grad_out[ni, ci])
        return grad_in, []

    def window_indices(self, in_shape: tuple[int, int, int]) -> np.ndarray:
        """Flat input indices per output unit: shape ``(out_units, k*k)``.

        The abstract interpreter uses this to apply per-window max
        transformers on flattened abstract elements.
        """
        c, h, w = in_shape
        k = self.kernel_size
        out_h, out_w = _conv_out_hw(h, w, k, k, self.stride, 0)
        flat = np.arange(c * h * w).reshape(c, h, w)
        windows = np.empty((c, out_h, out_w, k * k), dtype=np.int64)
        for i in range(k):
            for j in range(k):
                windows[:, :, :, i * k + j] = flat[
                    :,
                    i : i + self.stride * out_h : self.stride,
                    j : j + self.stride * out_w : self.stride,
                ]
        return windows.reshape(c * out_h * out_w, k * k)
