"""Minibatch SGD training for classification networks.

The paper's benchmark networks are trained externally (PyTorch); here the
training substrate is built in: softmax cross-entropy loss, backprop through
every layer (including conv via im2col), and SGD with momentum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import Network
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for :func:`train_classifier`.

    ``optimizer`` is ``"adam"`` (default — stable on the deep, narrow ReLU
    stacks the benchmark suite trains) or ``"sgd"`` (momentum SGD).
    """

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 0.01
    optimizer: str = "adam"
    momentum: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    shuffle: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if not 0.0 <= self.beta2 < 1.0:
            raise ValueError("beta2 must lie in [0, 1)")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of a batch of logits against integer labels."""
    probs = softmax(logits)
    n = logits.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    n = logits.shape[0]
    grad = softmax(logits)
    grad[np.arange(n), labels] -= 1.0
    return grad / n


def accuracy(network: Network, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples classified correctly."""
    preds = network.classify_batch(inputs)
    return float(np.mean(preds == np.asarray(labels)))


def train_classifier(
    network: Network,
    inputs: np.ndarray,
    labels: np.ndarray,
    config: TrainConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> list[float]:
    """Train ``network`` in place; returns the per-epoch mean training loss.

    Args:
        network: the model to train (parameters updated in place).
        inputs: batch of samples, shape ``(N, *input_shape)`` or ``(N, n)``.
        labels: integer class labels, shape ``(N,)``.
        config: optimizer hyper-parameters.
        rng: shuffling seed.
    """
    config = config or TrainConfig()
    gen = as_generator(rng)
    inputs = np.asarray(inputs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if inputs.shape[0] != labels.shape[0]:
        raise ValueError(
            f"{inputs.shape[0]} inputs but {labels.shape[0]} labels"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= network.num_classes):
        raise ValueError("labels out of range for the network's classes")

    # Digesting freezes parameter arrays; the optimizer below mutates the
    # exact arrays params() returns, so replace any frozen ones first.
    network.thaw_params()
    state = _OptimizerState(network.params(), config)
    losses: list[float] = []
    n = inputs.shape[0]
    for epoch in range(config.epochs):
        order = gen.permutation(n) if config.shuffle else np.arange(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            batch_x = inputs[idx]
            batch_y = labels[idx]
            logits, caches = network.forward_cached(batch_x)
            epoch_loss += cross_entropy(logits, batch_y)
            batches += 1
            grad_out = cross_entropy_grad(logits, batch_y)
            _, param_grads = network.backward(caches, grad_out)
            state.step(network.params(), param_grads)
        losses.append(epoch_loss / max(batches, 1))
        if config.verbose:
            print(f"epoch {epoch + 1}/{config.epochs}: loss={losses[-1]:.4f}")
    network.invalidate_ops()
    return losses


class _OptimizerState:
    """In-place parameter updates for SGD-with-momentum or Adam."""

    def __init__(self, params: list[np.ndarray], config: TrainConfig) -> None:
        self.config = config
        self.first = [np.zeros_like(p) for p in params]
        self.second = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(
        self, params: list[np.ndarray], param_grads: list[list[np.ndarray]]
    ) -> None:
        config = self.config
        flat_grads = [g for grads in param_grads for g in grads]
        self.t += 1
        for i, (param, grad) in enumerate(zip(params, flat_grads)):
            if config.weight_decay:
                grad = grad + config.weight_decay * param
            if config.optimizer == "sgd":
                vel = self.first[i]
                vel *= config.momentum
                vel -= config.learning_rate * grad
                param += vel
            else:  # adam
                m, v = self.first[i], self.second[i]
                m *= config.momentum
                m += (1.0 - config.momentum) * grad
                v *= config.beta2
                v += (1.0 - config.beta2) * grad * grad
                m_hat = m / (1.0 - config.momentum**self.t)
                v_hat = v / (1.0 - config.beta2**self.t)
                param -= config.learning_rate * m_hat / (np.sqrt(v_hat) + config.eps)
