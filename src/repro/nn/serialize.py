"""Save and load networks as ``.npz`` archives, plus stable content digests.

The archive stores a JSON header describing the layer stack plus one array
entry per parameter.  Round-tripping is exact (float64 bit patterns are
preserved by ``.npz``).

:func:`network_digest` hashes the same header plus the raw parameter bytes,
giving every network a stable content address: two networks digest equally
iff they have identical architectures and bit-identical parameters,
regardless of where (or whether) they live on disk.  The scheduler's result
cache (:mod:`repro.sched.cache`) keys on this digest.

:func:`layer_digests` refines the single address into a rolling per-layer
chain: entry ``i`` is the whole-network digest scheme applied to the prefix
``layers[:i+1]``, so the chain's last link *is* ``network_digest`` bit for
bit (every existing whole-network cache key stays warm) and two networks
that agree on their first ``k`` layers share the first ``k`` links.  The
prefix-checkpoint cache (:mod:`repro.sched.cache` ``PrefixRecord``) keys
on these links, which is what makes re-verification after a fine-tune a
suffix run instead of a cold one.

Digesting **freezes** the network's parameter arrays
(``writeable=False``): the digest is memoized on the instance, so a later
in-place mutation would silently poison every content-addressed cache.
Mutation after digesting now raises; intentional updates go through
``set_params`` / ``Network.thaw_params`` (which drop the memo).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Conv2d, Dense, ErrorPad, Flatten, MaxPool2d, ReLU
from repro.nn.network import Network


def _layer_spec(layer) -> dict:
    if isinstance(layer, Dense):
        return {"kind": "dense"}
    if isinstance(layer, Conv2d):
        return {"kind": "conv2d", "stride": layer.stride, "padding": layer.padding}
    if isinstance(layer, ReLU):
        return {"kind": "relu"}
    if isinstance(layer, ErrorPad):
        return {"kind": "errorpad"}
    if isinstance(layer, Flatten):
        return {"kind": "flatten"}
    if isinstance(layer, MaxPool2d):
        return {
            "kind": "maxpool2d",
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
        }
    raise TypeError(f"cannot serialize layer type {type(layer).__name__}")


def _prefix_digest(network: Network, end: int) -> str:
    """The whole-network digest scheme applied to ``layers[:end]``.

    ``end == len(layers)`` reproduces the historical ``network_digest``
    exactly (same header JSON, same parameter byte stream), which is the
    chain-compatibility invariant :func:`layer_digests` relies on.
    """
    header = {
        "input_shape": list(network.input_shape),
        "layers": [_layer_spec(layer) for layer in network.layers[:end]],
    }
    digest = hashlib.sha256(json.dumps(header, sort_keys=True).encode())
    for layer in network.layers[:end]:
        for param in layer.params():
            digest.update(np.ascontiguousarray(param, dtype=np.float64).tobytes())
    return digest.hexdigest()


def network_digest(network: Network) -> str:
    """A stable sha256 content address for a network.

    Covers the input shape, the layer stack (kinds plus structural
    attributes, exactly as serialized), and every parameter's float64 bit
    pattern.  Save/load round-trips preserve the digest; any weight or
    architecture change alters it.

    The result is the last link of the per-layer digest chain (see
    :func:`layer_digests`) and is memoized on the :class:`Network`
    instance, so repeated digest lookups in the scheduler, the result
    cache, and the process-pool network store hash each network exactly
    once.  First digest freezes the parameter arrays — intentional
    mutation goes through ``set_params``/``thaw_params``, which drop the
    memo via ``invalidate_ops``.
    """
    memo = getattr(network, "_digest", None)
    if memo is not None:
        return memo
    network.freeze_params()
    network._digest = _prefix_digest(network, len(network.layers))
    return network._digest


def layer_digests(network: Network) -> list[str]:
    """The rolling per-layer digest chain: one link per layer prefix.

    Entry ``i`` addresses the sub-network ``layers[:i+1]`` (with the full
    network's input shape); the last entry equals
    :func:`network_digest` bit for bit.  Memoized on the instance next to
    the whole-network memo and invalidated at the same points, so the
    O(L²) hashing cost is paid once per network, not once per lookup.
    """
    memo = getattr(network, "_layer_digests", None)
    if memo is not None:
        return list(memo)
    network.freeze_params()
    chain = [
        _prefix_digest(network, end)
        for end in range(1, len(network.layers) + 1)
    ]
    network._layer_digests = tuple(chain)
    network._digest = chain[-1]
    return chain


def common_prefix_layers(old: Network, new: Network) -> int:
    """How many leading layers ``old`` and ``new`` share, by digest chain.

    The count is in *layers* (digest-chain links), not analyzer ops; a
    whole-network match returns ``len(new.layers)``.  Zero means the
    chains diverge at the first layer (or the input shapes differ) and no
    prefix state is reusable.
    """
    chain_old = layer_digests(old)
    chain_new = layer_digests(new)
    common = 0
    for link_old, link_new in zip(chain_old, chain_new):
        if link_old != link_new:
            break
        common += 1
    return common


def save_network(network: Network, path: str | Path) -> None:
    """Write ``network`` to ``path`` as an ``.npz`` archive."""
    header = {
        "input_shape": list(network.input_shape),
        "layers": [_layer_spec(layer) for layer in network.layers],
    }
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(network.layers):
        for j, param in enumerate(layer.params()):
            arrays[f"param_{i}_{j}"] = param
    np.savez(path, header=np.array(json.dumps(header)), **arrays)


def load_network(path: str | Path) -> Network:
    """Read a network previously written by :func:`save_network`."""
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        layers = []
        for i, spec in enumerate(header["layers"]):
            kind = spec["kind"]
            if kind == "dense":
                layers.append(
                    Dense(archive[f"param_{i}_0"], archive[f"param_{i}_1"])
                )
            elif kind == "conv2d":
                layers.append(
                    Conv2d(
                        archive[f"param_{i}_0"],
                        archive[f"param_{i}_1"],
                        stride=spec["stride"],
                        padding=spec["padding"],
                    )
                )
            elif kind == "relu":
                layers.append(ReLU())
            elif kind == "errorpad":
                layers.append(ErrorPad(archive[f"param_{i}_0"]))
            elif kind == "flatten":
                layers.append(Flatten())
            elif kind == "maxpool2d":
                layers.append(
                    MaxPool2d(spec["kernel_size"], stride=spec["stride"])
                )
            else:
                raise ValueError(f"unknown layer kind {kind!r}")
    return Network(layers, input_shape=tuple(header["input_shape"]))
