"""Save and load networks as ``.npz`` archives, plus stable content digests.

The archive stores a JSON header describing the layer stack plus one array
entry per parameter.  Round-tripping is exact (float64 bit patterns are
preserved by ``.npz``).

:func:`network_digest` hashes the same header plus the raw parameter bytes,
giving every network a stable content address: two networks digest equally
iff they have identical architectures and bit-identical parameters,
regardless of where (or whether) they live on disk.  The scheduler's result
cache (:mod:`repro.sched.cache`) keys on this digest.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Conv2d, Dense, ErrorPad, Flatten, MaxPool2d, ReLU
from repro.nn.network import Network


def _layer_spec(layer) -> dict:
    if isinstance(layer, Dense):
        return {"kind": "dense"}
    if isinstance(layer, Conv2d):
        return {"kind": "conv2d", "stride": layer.stride, "padding": layer.padding}
    if isinstance(layer, ReLU):
        return {"kind": "relu"}
    if isinstance(layer, ErrorPad):
        return {"kind": "errorpad"}
    if isinstance(layer, Flatten):
        return {"kind": "flatten"}
    if isinstance(layer, MaxPool2d):
        return {
            "kind": "maxpool2d",
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
        }
    raise TypeError(f"cannot serialize layer type {type(layer).__name__}")


def network_digest(network: Network) -> str:
    """A stable sha256 content address for a network.

    Covers the input shape, the layer stack (kinds plus structural
    attributes, exactly as serialized), and every parameter's float64 bit
    pattern.  Save/load round-trips preserve the digest; any weight or
    architecture change alters it.

    The result is memoized on the :class:`Network` instance (networks are
    immutable once analyzed — the only mutation path, ``set_params``,
    drops the memo via ``invalidate_ops``), so repeated digest lookups in
    the scheduler, the result cache, and the process-pool network store
    hash each network exactly once.
    """
    memo = getattr(network, "_digest", None)
    if memo is not None:
        return memo
    header = {
        "input_shape": list(network.input_shape),
        "layers": [_layer_spec(layer) for layer in network.layers],
    }
    digest = hashlib.sha256(json.dumps(header, sort_keys=True).encode())
    for layer in network.layers:
        for param in layer.params():
            digest.update(np.ascontiguousarray(param, dtype=np.float64).tobytes())
    network._digest = digest.hexdigest()
    return network._digest


def save_network(network: Network, path: str | Path) -> None:
    """Write ``network`` to ``path`` as an ``.npz`` archive."""
    header = {
        "input_shape": list(network.input_shape),
        "layers": [_layer_spec(layer) for layer in network.layers],
    }
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(network.layers):
        for j, param in enumerate(layer.params()):
            arrays[f"param_{i}_{j}"] = param
    np.savez(path, header=np.array(json.dumps(header)), **arrays)


def load_network(path: str | Path) -> Network:
    """Read a network previously written by :func:`save_network`."""
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        layers = []
        for i, spec in enumerate(header["layers"]):
            kind = spec["kind"]
            if kind == "dense":
                layers.append(
                    Dense(archive[f"param_{i}_0"], archive[f"param_{i}_1"])
                )
            elif kind == "conv2d":
                layers.append(
                    Conv2d(
                        archive[f"param_{i}_0"],
                        archive[f"param_{i}_1"],
                        stride=spec["stride"],
                        padding=spec["padding"],
                    )
                )
            elif kind == "relu":
                layers.append(ReLU())
            elif kind == "errorpad":
                layers.append(ErrorPad(archive[f"param_{i}_0"]))
            elif kind == "flatten":
                layers.append(Flatten())
            elif kind == "maxpool2d":
                layers.append(
                    MaxPool2d(spec["kernel_size"], stride=spec["stride"])
                )
            else:
                raise ValueError(f"unknown layer kind {kind!r}")
    return Network(layers, input_shape=tuple(header["input_shape"]))
