"""Save and load networks as ``.npz`` archives.

The archive stores a JSON header describing the layer stack plus one array
entry per parameter.  Round-tripping is exact (float64 bit patterns are
preserved by ``.npz``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.network import Network


def _layer_spec(layer) -> dict:
    if isinstance(layer, Dense):
        return {"kind": "dense"}
    if isinstance(layer, Conv2d):
        return {"kind": "conv2d", "stride": layer.stride, "padding": layer.padding}
    if isinstance(layer, ReLU):
        return {"kind": "relu"}
    if isinstance(layer, Flatten):
        return {"kind": "flatten"}
    if isinstance(layer, MaxPool2d):
        return {
            "kind": "maxpool2d",
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
        }
    raise TypeError(f"cannot serialize layer type {type(layer).__name__}")


def save_network(network: Network, path: str | Path) -> None:
    """Write ``network`` to ``path`` as an ``.npz`` archive."""
    header = {
        "input_shape": list(network.input_shape),
        "layers": [_layer_spec(layer) for layer in network.layers],
    }
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(network.layers):
        for j, param in enumerate(layer.params()):
            arrays[f"param_{i}_{j}"] = param
    np.savez(path, header=np.array(json.dumps(header)), **arrays)


def load_network(path: str | Path) -> Network:
    """Read a network previously written by :func:`save_network`."""
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        layers = []
        for i, spec in enumerate(header["layers"]):
            kind = spec["kind"]
            if kind == "dense":
                layers.append(
                    Dense(archive[f"param_{i}_0"], archive[f"param_{i}_1"])
                )
            elif kind == "conv2d":
                layers.append(
                    Conv2d(
                        archive[f"param_{i}_0"],
                        archive[f"param_{i}_1"],
                        stride=spec["stride"],
                        padding=spec["padding"],
                    )
                )
            elif kind == "relu":
                layers.append(ReLU())
            elif kind == "flatten":
                layers.append(Flatten())
            elif kind == "maxpool2d":
                layers.append(
                    MaxPool2d(spec["kernel_size"], stride=spec["stride"])
                )
            else:
                raise ValueError(f"unknown layer kind {kind!r}")
    return Network(layers, input_shape=tuple(header["input_shape"]))
