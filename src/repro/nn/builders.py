"""Constructors for the network architectures used in the paper.

The evaluation (§7) uses fully-connected nets of sizes 3x100, 6x100, 9x100,
9x200 (``NxM`` = N hidden layers of width M) and a LeNet-style convolutional
network, plus the small worked examples from §2–§3.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.network import Network
from repro.utils.rng import as_generator


def mlp(
    input_size: int,
    hidden_sizes: list[int],
    num_classes: int,
    rng: int | np.random.Generator | None = None,
) -> Network:
    """Fully-connected ReLU classifier.

    ``mlp(784, [100]*3, 10)`` is the paper's "3x100" MNIST network.
    """
    if input_size < 1 or num_classes < 1:
        raise ValueError("input_size and num_classes must be positive")
    gen = as_generator(rng)
    layers: list = []
    size = input_size
    for width in hidden_sizes:
        layers.append(Dense.initialize(size, width, gen))
        layers.append(ReLU())
        size = width
    layers.append(Dense.initialize(size, num_classes, gen))
    return Network(layers, input_shape=(input_size,))


def redundant_mlp(
    input_size: int,
    base_widths: list[int],
    num_classes: int,
    dup: int = 4,
    noise: float = 1e-3,
    rng: int | np.random.Generator | None = None,
) -> Network:
    """An MLP whose hidden layers carry ``dup``-fold near-duplicate neurons.

    Each hidden neuron of a freshly initialized base network is replaced
    by ``dup`` copies with ``noise``-scale weight perturbations, incoming
    weights from duplicated units divided by ``dup`` so the function is
    (up to the perturbations) the base network's.  Trained networks
    exhibit exactly this kind of redundancy; this builder makes it
    reproducible, which is what the :mod:`repro.abstract.netabs` tests
    and benchmarks need — syntactic clustering at the matching level
    recovers the duplicate groups with tiny error bounds.
    """
    if dup < 1:
        raise ValueError(f"dup must be >= 1, got {dup}")
    gen = as_generator(rng)
    base = mlp(input_size, base_widths, num_classes, rng=gen)
    weights = [
        (layer.weight, layer.bias)
        for layer in base.layers
        if isinstance(layer, Dense)
    ]
    layers: list = []
    last = len(weights) - 1
    for i, (weight, bias) in enumerate(weights):
        if i > 0:  # incoming columns from a duplicated layer
            weight = np.repeat(weight / dup, dup, axis=1)
        if i < last:  # duplicate this layer's rows
            weight = np.repeat(weight, dup, axis=0)
            bias = np.repeat(bias, dup)
            weight = weight + noise * gen.standard_normal(weight.shape)
            bias = bias + noise * gen.standard_normal(bias.shape)
            layers += [Dense(weight, bias), ReLU()]
        else:
            layers.append(Dense(weight, bias))
    return Network(layers, input_shape=(input_size,))


def lenet_conv(
    input_shape: tuple[int, int, int] = (1, 8, 8),
    num_classes: int = 10,
    conv_channels: tuple[int, int, int, int] = (4, 4, 8, 8),
    fc_sizes: tuple[int, int] = (32, 16),
    rng: int | np.random.Generator | None = None,
) -> Network:
    """A LeNet-style conv net, scaled for laptop verification budgets.

    Mirrors the paper's architecture: two conv layers, max pool, two more
    conv layers, max pool, then three fully-connected layers.  The default
    channel/width parameters are the scaled-down substitution documented in
    DESIGN.md §5; pass larger ones to approach the paper's sizes.
    """
    c, h, w = input_shape
    if h % 4 != 0 or w % 4 != 0:
        raise ValueError("input height/width must be divisible by 4 (two 2x2 pools)")
    gen = as_generator(rng)
    c1, c2, c3, c4 = conv_channels
    f1, f2 = fc_sizes
    layers = [
        Conv2d.initialize(c, c1, kernel_size=3, padding=1, rng=gen),
        ReLU(),
        Conv2d.initialize(c1, c2, kernel_size=3, padding=1, rng=gen),
        ReLU(),
        MaxPool2d(2),
        Conv2d.initialize(c2, c3, kernel_size=3, padding=1, rng=gen),
        ReLU(),
        Conv2d.initialize(c3, c4, kernel_size=3, padding=1, rng=gen),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense.initialize(c4 * (h // 4) * (w // 4), f1, gen),
        ReLU(),
        Dense.initialize(f1, f2, gen),
        ReLU(),
        Dense.initialize(f2, num_classes, gen),
    ]
    return Network(layers, input_shape=input_shape)


def xor_network() -> Network:
    """The XOR network of Figure 3.

    Classifies ``[0,0]`` and ``[1,1]`` as class 0, ``[0,1]`` and ``[1,0]``
    as class 1.
    """
    w1 = np.array([[1.0, 1.0], [1.0, 1.0]])
    b1 = np.array([0.0, -1.0])
    w2 = np.array([[-1.0, 2.0], [1.0, -2.0]])
    b2 = np.array([1.0, 0.0])
    layers = [Dense(w1, b1), ReLU(), Dense(w2, b2)]
    return Network(layers, input_shape=(2,))


def example_2_2_network() -> Network:
    """The 1-input network of Example 2.2 (robust on [-1,1], not on [-1,2])."""
    w1 = np.array([[1.0], [2.0]])
    b1 = np.array([-1.0, 1.0])
    w2 = np.array([[2.0, 1.0], [-1.0, 1.0]])
    b2 = np.array([1.0, 2.0])
    layers = [Dense(w1, b1), ReLU(), Dense(w2, b2)]
    return Network(layers, input_shape=(1,))


def example_2_3_network() -> Network:
    """The network of Example 2.3 (needs 2 zonotope disjuncts to verify)."""
    w1 = np.array([[1.0, -3.0], [0.0, 3.0]])
    b1 = np.array([1.0, 1.0])
    w2 = np.array([[1.0, 1.1], [-1.0, 1.0]])
    b2 = np.array([-3.0, 1.2])
    layers = [Dense(w1, b1), ReLU(), Dense(w2, b2)]
    return Network(layers, input_shape=(2,))
