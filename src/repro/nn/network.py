"""The :class:`Network` container and its lowering to analyzer operations.

A network is a sequence of layers ``L1 ∘ σ1 ∘ … ∘ Lk`` (§2.1 of the paper).
For analysis we lower every network to a flat list of three op kinds over
vectors:

- :class:`AffineOp` — ``y = W x + b``.  Dense layers map directly;
  convolutions are materialized to their (dense) affine form, which is what
  lets a single abstract interpreter cover both architectures, exactly as
  AI2 does.
- :class:`ReluOp` — element-wise rectification.
- :class:`MaxPoolOp` — per-window maxima described by index sets.

The lowering is cached per network; mutating parameters through
:meth:`Network.set_params` (or calling :meth:`Network.invalidate_ops`)
invalidates the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dense,
    ErrorPad,
    Flatten,
    Layer,
    MaxPool2d,
    ReLU,
    _conv_out_hw,
)


@dataclass(frozen=True)
class AffineOp:
    """``y = weight @ x + bias`` over flattened vectors."""

    weight: np.ndarray
    bias: np.ndarray

    @property
    def in_size(self) -> int:
        return self.weight.shape[1]

    @property
    def out_size(self) -> int:
        return self.weight.shape[0]

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self.weight @ x + self.bias


@dataclass(frozen=True)
class ReluOp:
    """Element-wise ``max(x, 0)``."""

    size: int

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


@dataclass(frozen=True)
class MaxPoolOp:
    """Per-window max: ``y_o = max(x[windows[o]])``."""

    windows: np.ndarray  # (out_units, window_size) int indices
    in_size: int

    @property
    def out_size(self) -> int:
        return self.windows.shape[0]

    def apply(self, x: np.ndarray) -> np.ndarray:
        return x[self.windows].max(axis=1)


@dataclass(frozen=True)
class PadOp:
    """Independent per-dimension error: ``y_j = x_j + e_j, |e_j| <= radii[j]``.

    Each ``e_j`` is adversarially chosen *independently* of the others —
    abstract transformers must widen every dimension outward by its
    radius without correlating the errors.  The concrete semantics pick
    ``e = 0``, so :meth:`apply` is the identity: sampled points, PGD
    witnesses, and forward checks all run through the underlying merged
    weights unperturbed.
    """

    radii: np.ndarray  # (n,) non-negative per-dimension error bounds

    @property
    def size(self) -> int:
        return self.radii.shape[0]

    def apply(self, x: np.ndarray) -> np.ndarray:
        return x


Op = "AffineOp | ReluOp | MaxPoolOp | PadOp"


def _affine_of_linear_layer(
    layer: Layer, in_shape: tuple[int, ...], chunk: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize any affine layer as ``(W, b)`` by probing basis vectors.

    Probes in ``chunk``-column slabs so peak memory is ``O(chunk · n_in)``
    instead of the ``O(n_in²)`` a one-shot ``np.eye(n_in)`` basis needs.
    Kept as the architecture-agnostic fallback; convolutions take the
    direct :func:`_affine_of_conv` construction instead.
    """
    n_in = int(np.prod(in_shape))
    zero = np.zeros((1, *in_shape))
    bias = layer.forward(zero).reshape(-1)
    weight = np.empty((bias.size, n_in))
    for start in range(0, n_in, chunk):
        stop = min(start + chunk, n_in)
        basis = np.zeros((stop - start, n_in))
        basis[np.arange(stop - start), np.arange(start, stop)] = 1.0
        images = layer.forward(basis.reshape(-1, *in_shape))
        weight[:, start:stop] = images.reshape(stop - start, -1).T - bias[:, None]
    return weight, bias


def _affine_of_conv(
    layer: Conv2d, in_shape: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """The dense affine form of a convolution, built from kernel indices.

    Instead of probing an ``n_in``-vector basis through ``forward`` (an
    O(n_in · nnz) sweep with an O(n_in²) scratch basis), scatter each of
    the ``kh · kw`` kernel taps into the weight matrix directly — O(nnz)
    work and exact kernel values, no float subtraction residue.
    """
    if len(in_shape) != 3:
        raise ValueError(f"Conv2d lowering requires (C, H, W) input, got {in_shape}")
    c_in, h, w = in_shape
    out_c, k_in, kh, kw = layer.weight.shape
    if c_in != k_in:
        raise ValueError(f"Conv2d expects {k_in} channels, got {c_in}")
    stride, padding = layer.stride, layer.padding
    out_h, out_w = _conv_out_hw(h, w, kh, kw, stride, padding)
    n_in = c_in * h * w
    n_out = out_c * out_h * out_w
    weight = np.zeros((n_out, n_in))
    w6 = weight.reshape(out_c, out_h, out_w, c_in, h, w)
    oh = np.arange(out_h)
    ow = np.arange(out_w)
    for i in range(kh):
        ih = oh * stride - padding + i
        oh_ok = (ih >= 0) & (ih < h)
        if not oh_ok.any():
            continue
        for j in range(kw):
            iw = ow * stride - padding + j
            ow_ok = (iw >= 0) & (iw < w)
            if not ow_ok.any():
                continue
            # w6[o, oh, ow, c, ih, iw] = kernel[o, c, i, j] for every valid
            # (oh, ow).  Output rows/input cols never collide within or
            # across taps (distinct (oh, i) give distinct ih), so plain
            # assignment is enough.  The advanced indices are separated by
            # slices, so their broadcast axes lead the result: the target
            # reads (oh, ow, out_c, c_in).
            taps = layer.weight[None, None, :, :, i, j]
            w6[
                :,
                oh[oh_ok, None],
                ow[None, ow_ok],
                :,
                ih[oh_ok, None],
                iw[None, ow_ok],
            ] = np.broadcast_to(
                taps, (int(oh_ok.sum()), int(ow_ok.sum()), out_c, c_in)
            )
    bias = np.repeat(layer.bias, out_h * out_w)
    return weight, bias


#: Lowered conv affine forms, keyed per layer object by the exact parameter
#: bytes (training updates parameters in place, so identity alone is not a
#: safe key).  Bounded per layer; geometry changes are rare.
_CONV_AFFINE_CACHE: "WeakKeyDictionary[Conv2d, dict]" = WeakKeyDictionary()
_CONV_CACHE_ENTRIES = 4


def _conv_affine_cached(
    layer: Conv2d, in_shape: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized :func:`_affine_of_conv` per ``(layer, in_shape, params)``."""
    per_layer = _CONV_AFFINE_CACHE.setdefault(layer, {})
    key = (
        in_shape,
        layer.stride,
        layer.padding,
        layer.weight.tobytes(),
        layer.bias.tobytes(),
    )
    hit = per_layer.get(key)
    if hit is None:
        if len(per_layer) >= _CONV_CACHE_ENTRIES:
            per_layer.pop(next(iter(per_layer)))
        hit = _affine_of_conv(layer, in_shape)
        per_layer[key] = hit
    return hit


class Network:
    """A feed-forward classifier ``N : R^n -> R^m``.

    Args:
        layers: the layer sequence.
        input_shape: sample shape, e.g. ``(16,)`` for an MLP or ``(1, 8, 8)``
            for a conv net.  Shapes are validated through the whole stack at
            construction time.
    """

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(int(s) for s in input_shape)
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.out_shape(shapes[-1]))
        if len(shapes[-1]) != 1:
            raise ValueError(
                f"network output must be a vector of class scores, got {shapes[-1]}"
            )
        self._shapes = shapes
        self._ops_cache: list | None = None
        self._ops_cache_typed: dict[str, list] = {}
        # Content digest memos (see repro.nn.serialize.network_digest /
        # layer_digests).  Networks are immutable once analyzed: the only
        # mutation path is set_params(), which funnels through
        # invalidate_ops() below, and digesting freezes the parameter
        # arrays so in-place mutation cannot silently outlive the memo.
        self._digest: str | None = None
        self._layer_digests: tuple[str, ...] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def input_size(self) -> int:
        return int(np.prod(self.input_shape))

    @property
    def output_size(self) -> int:
        return self._shapes[-1][0]

    @property
    def num_classes(self) -> int:
        return self.output_size

    def layer_shapes(self) -> list[tuple[int, ...]]:
        """Sample shape after each layer, starting with the input shape."""
        return list(self._shapes)

    def num_params(self) -> int:
        return sum(p.size for layer in self.layers for p in layer.params())

    def num_relu_units(self) -> int:
        """Total ReLU activations — the paper's rough hardness measure."""
        total = 0
        for layer, shape in zip(self.layers, self._shapes[:-1]):
            if isinstance(layer, ReLU):
                total += int(np.prod(shape))
        return total

    def has_conv(self) -> bool:
        return any(isinstance(layer, Conv2d) for layer in self.layers)

    def summary(self) -> str:
        lines = [f"Network(input={self.input_shape}, params={self.num_params()})"]
        for layer, shape in zip(self.layers, self._shapes[1:]):
            lines.append(f"  {type(layer).__name__:<10} -> {shape}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Concrete execution
    # ------------------------------------------------------------------

    def _as_batch(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1 and x.size == self.input_size:
            return x.reshape(1, *self.input_shape), True
        if x.shape == self.input_shape:
            return x.reshape(1, *self.input_shape), True
        if x.shape[1:] == self.input_shape:
            return x, False
        if x.ndim == 2 and x.shape[1] == self.input_size:
            return x.reshape(x.shape[0], *self.input_shape), False
        raise ValueError(
            f"input shape {x.shape} incompatible with network input "
            f"{self.input_shape}"
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Class scores; single samples in, single score vectors out."""
        batch, single = self._as_batch(x)
        for layer in self.layers:
            batch = layer.forward(batch)
        return batch[0] if single else batch

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` for a single sample."""
        out = self.forward(x)
        if out.ndim != 1:
            raise ValueError("logits() expects a single sample")
        return out

    def classify(self, x: np.ndarray) -> int:
        """Predicted class: argmax of the score vector."""
        return int(np.argmax(self.logits(x)))

    def classify_batch(self, x: np.ndarray) -> np.ndarray:
        batch, _ = self._as_batch(x)
        out = self.forward(batch)
        return np.argmax(out, axis=1)

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------

    def forward_cached(self, x: np.ndarray) -> tuple[np.ndarray, list]:
        """Batched forward keeping every layer cache (for backprop)."""
        batch, _ = self._as_batch(x)
        caches = []
        for layer in self.layers:
            batch, cache = layer.forward_cached(batch)
            caches.append(cache)
        return batch, caches

    def backward(
        self, caches: list, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[list[np.ndarray]]]:
        """Backpropagate ``grad_out`` (batched) through the cached pass.

        Returns the gradient w.r.t. the input batch and per-layer parameter
        gradients (aligned with ``self.layers``).
        """
        param_grads: list[list[np.ndarray]] = [[] for _ in self.layers]
        grad = grad_out
        for idx in range(len(self.layers) - 1, -1, -1):
            grad, grads = self.layers[idx].backward(caches[idx], grad)
            param_grads[idx] = grads
        return grad, param_grads

    def backward_input(self, caches: list, grad_out: np.ndarray) -> np.ndarray:
        """Input gradient of the cached pass, skipping parameter gradients.

        Verification-time backprop (PGD, policy features) never consumes
        parameter gradients, and for affine layers computing them doubles the
        backward cost; this path keeps only the input-gradient GEMMs.
        """
        grad = grad_out
        for idx in range(len(self.layers) - 1, -1, -1):
            grad = self.layers[idx].backward_input(caches[idx], grad)
        return grad

    def input_gradient(self, x: np.ndarray, seed: np.ndarray) -> np.ndarray:
        """Gradient of ``seed · N(x)`` w.r.t. a single flat input ``x``.

        This is the primitive behind both PGD (gradient of the margin) and
        the "influence" feature of the partition policy.
        """
        seed = np.asarray(seed, dtype=np.float64).reshape(-1)
        if seed.size != self.output_size:
            raise ValueError(
                f"seed has {seed.size} entries, network outputs {self.output_size}"
            )
        out, caches = self.forward_cached(x)
        grad_out = np.broadcast_to(seed, out.shape).copy()
        grad_in = self.backward_input(caches, grad_out)
        return grad_in.reshape(-1)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def set_params(self, params: list[np.ndarray]) -> None:
        offset = 0
        for layer in self.layers:
            count = len(layer.params())
            layer.set_params(params[offset : offset + count])
            offset += count
        if offset != len(params):
            raise ValueError(f"expected {offset} parameter arrays, got {len(params)}")
        self.invalidate_ops()

    def freeze_params(self) -> None:
        """Make every parameter array read-only (``writeable=False``).

        Called on first digest: the content digest is memoized, so an
        in-place parameter write afterward would silently poison every
        content-addressed cache keyed on it.  Frozen arrays make that
        write raise instead.  Intentional updates replace the arrays —
        :meth:`set_params` or :meth:`thaw_params` — and drop the memo.
        """
        for layer in self.layers:
            for param in layer.params():
                param.flags.writeable = False

    def thaw_params(self) -> None:
        """Replace frozen parameter arrays with writable copies.

        The in-place training path (:mod:`repro.nn.training`) mutates the
        arrays returned by :meth:`params` directly; after a digest has
        frozen them, it must thaw first.  Replacing (rather than
        re-flagging) the arrays means any outstanding digest memo or
        spill file keyed on the old bytes stays valid for the old arrays;
        the memos themselves are dropped via :meth:`invalidate_ops`.
        """
        thawed = False
        for layer in self.layers:
            params = layer.params()
            if params and not all(p.flags.writeable for p in params):
                layer.set_params(
                    [np.array(p, dtype=np.float64) for p in params]
                )
                thawed = True
        if thawed:
            self.invalidate_ops()

    def invalidate_ops(self) -> None:
        """Drop the cached analyzer lowering after parameter mutation.

        Also drops the memoized content digests (whole-network and
        per-layer chain) — both are pure functions of (architecture,
        parameters), so they share exactly the invalidation points of the
        lowering cache.
        """
        self._ops_cache = None
        self._ops_cache_typed.clear()
        self._digest = None
        self._layer_digests = None

    # ------------------------------------------------------------------
    # Lowering for the analyzers
    # ------------------------------------------------------------------

    def ops(self) -> list:
        """Flat op sequence (affine / relu / maxpool) over vectors.

        Flatten layers disappear (they are the identity on flat vectors) and
        convolutions are materialized to dense affine maps.  The result is
        cached.
        """
        if self._ops_cache is not None:
            return self._ops_cache
        ops: list = []
        for layer, in_shape in zip(self.layers, self._shapes[:-1]):
            n_in = int(np.prod(in_shape))
            if isinstance(layer, Dense):
                ops.append(AffineOp(layer.weight.copy(), layer.bias.copy()))
            elif isinstance(layer, Conv2d):
                weight, bias = _conv_affine_cached(layer, in_shape)
                # Copies keep the ops contract uniform with the Dense
                # branch: callers own their arrays, the shared cache stays
                # pristine.
                ops.append(AffineOp(weight.copy(), bias.copy()))
            elif isinstance(layer, ReLU):
                ops.append(ReluOp(size=n_in))
            elif isinstance(layer, ErrorPad):
                # Must come before the is_linear fallback: the concrete
                # forward is the identity, so basis probing would silently
                # drop the error term and break over-approximation.
                ops.append(PadOp(layer.radii.copy()))
            elif isinstance(layer, MaxPool2d):
                if len(in_shape) != 3:
                    raise ValueError("MaxPool2d lowering requires (C,H,W) input")
                ops.append(
                    MaxPoolOp(windows=layer.window_indices(in_shape), in_size=n_in)
                )
            elif isinstance(layer, Flatten):
                continue
            elif layer.is_linear:
                # Architecture-agnostic fallback: any affine layer can be
                # materialized by probing basis vectors through forward().
                weight, bias = _affine_of_linear_layer(layer, in_shape)
                ops.append(AffineOp(weight, bias))
            else:
                raise TypeError(
                    f"no analyzer lowering for layer type {type(layer).__name__}"
                )
        self._ops_cache = ops
        return ops

    def ops_for(self, dtype) -> list:
        """The op sequence with affine parameters in ``dtype``.

        float64 returns :meth:`ops` unchanged (the bitwise reference
        lowering); narrower dtypes get a converted copy cached per dtype
        so the analyzers never pay the cast per propagation — and, just
        as important, never mix float64 parameters into a float32
        element (numpy would silently re-promote every product).  Both
        caches drop together on :meth:`invalidate_ops`.
        """
        dt = np.dtype(dtype)
        if dt == np.float64:
            return self.ops()
        cached = self._ops_cache_typed.get(dt.char)
        if cached is None:
            cached = []
            for op in self.ops():
                if isinstance(op, AffineOp):
                    op = AffineOp(op.weight.astype(dt), op.bias.astype(dt))
                elif isinstance(op, PadOp):
                    # Error radii must never shrink under a narrowing
                    # cast — bump any rounded-down radius one ulp toward
                    # +inf so the narrow lowering stays a sound
                    # over-approximation of the float64 reference.
                    radii = op.radii.astype(dt)
                    low = radii.astype(np.float64) < op.radii
                    if low.any():
                        radii[low] = np.nextafter(radii[low], dt.type(np.inf))
                    op = PadOp(radii)
                cached.append(op)
            self._ops_cache_typed[dt.char] = cached
        return cached

    def eval_ops(self, x: np.ndarray) -> np.ndarray:
        """Run the lowered op sequence on a flat vector (used by tests to
        check that lowering agrees with the layer-level forward pass)."""
        v = np.asarray(x, dtype=np.float64).reshape(-1)
        for op in self.ops():
            v = op.apply(v)
        return v
