"""Neural network substrate: numpy feed-forward networks.

The paper analyzes ReLU networks built from affine layers (fully-connected
and convolutional — §2.1 notes both are affine transformations) plus max
pooling.  This package provides:

- :mod:`repro.nn.layers` — Dense, Conv2d, MaxPool2d, ReLU, Flatten with
  forward, input-gradient, and parameter-gradient passes.
- :mod:`repro.nn.network` — the :class:`Network` container, plus lowering to
  the flat operation sequence (affine / relu / maxpool) consumed by the
  abstract interpreter.
- :mod:`repro.nn.builders` — constructors for the paper's architectures
  (``NxM`` MLPs and the LeNet-style conv net).
- :mod:`repro.nn.training` — minibatch SGD training (softmax cross-entropy).
- :mod:`repro.nn.serialize` — save/load networks as ``.npz`` and stable
  content digests (:func:`network_digest`).
"""

from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.network import AffineOp, MaxPoolOp, Network, ReluOp
from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.nn.training import TrainConfig, train_classifier
from repro.nn.serialize import load_network, network_digest, save_network

__all__ = [
    "Dense",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Flatten",
    "Network",
    "AffineOp",
    "ReluOp",
    "MaxPoolOp",
    "mlp",
    "lenet_conv",
    "xor_network",
    "TrainConfig",
    "train_classifier",
    "save_network",
    "load_network",
    "network_digest",
]
