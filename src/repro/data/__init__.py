"""Dataset substrate.

The paper evaluates on MNIST and CIFAR-10 and trains its verification policy
on ACAS Xu properties.  This environment has no network access and no
proprietary avionics tables, so (per DESIGN.md §5) we build deterministic
synthetic stand-ins with the same tensor shapes and the same role in the
pipeline:

- :func:`mnist_like` — grayscale ``(1, h, w)`` images, 10 classes.
- :func:`cifar_like` — color ``(3, h, w)`` images, 10 classes.
- :func:`repro.data.acas.acas_table` — a 5-input advisory function with
  geometric decision regions, used for policy training.
"""

from repro.data.synthetic import Dataset, cifar_like, mnist_like
from repro.data.acas import acas_network, acas_table, acas_training_properties

__all__ = [
    "Dataset",
    "mnist_like",
    "cifar_like",
    "acas_table",
    "acas_network",
    "acas_training_properties",
]
