"""Synthetic class-prototype image datasets (MNIST-like and CIFAR-like).

Each class ``k`` gets a deterministic smooth prototype image; samples are
``clip(prototype + noise, 0, 1)``.  Prototypes are built from low-frequency
sinusoidal patterns so that (a) nearby pixels correlate like natural images,
(b) classes are separable but not trivially so, and (c) trained classifiers
end up with realistic margins — which is what brightening-attack benchmarks
actually exercise (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator


@dataclass(frozen=True)
class Dataset:
    """An in-memory labelled dataset.

    Attributes:
        inputs: ``(N, *sample_shape)`` float64 array in ``[0, 1]``.
        labels: ``(N,)`` integer class labels.
        num_classes: number of classes.
    """

    inputs: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        inputs = np.asarray(self.inputs, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        if inputs.shape[0] != labels.shape[0]:
            raise ValueError(
                f"{inputs.shape[0]} inputs but {labels.shape[0]} labels"
            )
        if self.num_classes < 1:
            raise ValueError("num_classes must be positive")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError("labels out of range")
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.inputs.shape[0]

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return self.inputs.shape[1:]

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.inputs[indices], self.labels[indices], self.num_classes)

    def split(self, train_fraction: float, rng=None) -> tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must lie in (0, 1)")
        gen = as_generator(rng)
        order = gen.permutation(len(self))
        cut = int(len(self) * train_fraction)
        return self.subset(order[:cut]), self.subset(order[cut:])


def _class_prototypes(
    num_classes: int,
    channels: int,
    height: int,
    width: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Smooth per-class prototype images in ``[0.15, 0.85]``.

    Prototypes are sums of a few random low-frequency 2-D sinusoids, which
    gives every class a distinct large-scale structure (loosely mimicking
    stroke/texture differences between digit or object classes).
    """
    ys, xs = np.meshgrid(
        np.linspace(0.0, 1.0, height), np.linspace(0.0, 1.0, width), indexing="ij"
    )
    protos = np.zeros((num_classes, channels, height, width))
    for k in range(num_classes):
        for c in range(channels):
            image = np.zeros((height, width))
            for _ in range(3):
                fy, fx = rng.uniform(0.5, 3.0, size=2)
                phase_y, phase_x = rng.uniform(0.0, 2 * np.pi, size=2)
                amp = rng.uniform(0.5, 1.0)
                image += amp * np.sin(2 * np.pi * fy * ys + phase_y) * np.sin(
                    2 * np.pi * fx * xs + phase_x
                )
            lo, hi = image.min(), image.max()
            span = hi - lo if hi > lo else 1.0
            protos[k, c] = 0.15 + 0.7 * (image - lo) / span
    return protos


def _prototype_dataset(
    num_samples: int,
    num_classes: int,
    channels: int,
    height: int,
    width: int,
    noise: float,
    rng: np.random.Generator,
) -> Dataset:
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    protos = _class_prototypes(num_classes, channels, height, width, rng)
    labels = rng.integers(0, num_classes, size=num_samples)
    samples = protos[labels] + rng.normal(0.0, noise, size=(num_samples, channels, height, width))
    samples = np.clip(samples, 0.0, 1.0)
    return Dataset(samples, labels, num_classes)


def mnist_like(
    num_samples: int = 2000,
    num_classes: int = 10,
    image_size: int = 8,
    noise: float = 0.08,
    rng: int | np.random.Generator | None = 0,
) -> Dataset:
    """A grayscale MNIST stand-in: ``(1, image_size, image_size)`` samples.

    The default 8x8 resolution is the scaled-down substitution from
    DESIGN.md §5; pass ``image_size=28`` to recover MNIST geometry.
    """
    gen = as_generator(rng)
    return _prototype_dataset(num_samples, num_classes, 1, image_size, image_size, noise, gen)


def cifar_like(
    num_samples: int = 2000,
    num_classes: int = 10,
    image_size: int = 8,
    noise: float = 0.1,
    rng: int | np.random.Generator | None = 1,
) -> Dataset:
    """A color CIFAR-10 stand-in: ``(3, image_size, image_size)`` samples."""
    gen = as_generator(rng)
    return _prototype_dataset(num_samples, num_classes, 3, image_size, image_size, noise, gen)
