"""Synthetic ACAS-Xu-style collision-avoidance substrate.

The paper trains its verification policy on 12 robustness properties of an
ACAS Xu network (§6).  The real ACAS Xu score tables are proprietary, so we
substitute a deterministic advisory function with the same structure: five
normalized sensor inputs, five advisories, and piecewise decision regions
whose boundaries create non-trivial verification problems (DESIGN.md §5).

Inputs (all normalized to ``[0, 1]``):
    rho    — distance to intruder (0 = close, 1 = far)
    theta  — bearing of intruder (0 = hard left, 1 = hard right)
    psi    — intruder heading (unused by the advisory itself; it adds benign
             dimensions so networks learn to ignore some inputs)
    v_own  — ownship speed
    v_int  — intruder speed

Advisories: 0 = clear-of-conflict, 1 = weak left, 2 = weak right,
3 = strong left, 4 = strong right.
"""

from __future__ import annotations

import numpy as np

from repro.core.property import RobustnessProperty
from repro.nn.builders import mlp
from repro.nn.network import Network
from repro.nn.training import TrainConfig, train_classifier
from repro.utils.boxes import Box
from repro.utils.rng import as_generator

NUM_INPUTS = 5
NUM_ADVISORIES = 5

COC, WEAK_LEFT, WEAK_RIGHT, STRONG_LEFT, STRONG_RIGHT = range(5)


def acas_table(x: np.ndarray) -> np.ndarray:
    """Advisory labels for a batch of normalized sensor vectors.

    Severity grows as the intruder gets closer and faster; below a severity
    threshold the advisory is clear-of-conflict, otherwise the turn direction
    follows the bearing and the strength follows severity.
    """
    x = np.asarray(x, dtype=np.float64)
    single = x.ndim == 1
    batch = x.reshape(1, -1) if single else x
    if batch.shape[1] != NUM_INPUTS:
        raise ValueError(f"expected {NUM_INPUTS} inputs, got {batch.shape[1]}")
    rho, theta = batch[:, 0], batch[:, 1]
    v_int = batch[:, 4]
    severity = (1.0 - rho) * (0.4 + 0.6 * v_int)
    labels = np.zeros(batch.shape[0], dtype=np.int64)
    conflict = severity >= 0.35
    left = theta < 0.5
    strong = severity >= 0.65
    labels[conflict & left & ~strong] = WEAK_LEFT
    labels[conflict & ~left & ~strong] = WEAK_RIGHT
    labels[conflict & left & strong] = STRONG_LEFT
    labels[conflict & ~left & strong] = STRONG_RIGHT
    return labels[0] if single else labels


def acas_dataset(
    num_samples: int = 4000, rng: int | np.random.Generator | None = 7
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly sampled sensor vectors with their table advisories."""
    gen = as_generator(rng)
    inputs = gen.uniform(0.0, 1.0, size=(num_samples, NUM_INPUTS))
    return inputs, acas_table(inputs)


def acas_network(
    hidden: tuple[int, ...] = (24, 24, 24, 24),
    epochs: int = 30,
    rng: int | np.random.Generator | None = 7,
) -> Network:
    """Train a dense advisory network on the synthetic table.

    The architecture is the scaled-down stand-in for ACAS Xu's 6x50 networks;
    pass ``hidden=(50,)*6`` to match the original depth/width.
    """
    gen = as_generator(rng)
    inputs, labels = acas_dataset(rng=gen)
    network = mlp(NUM_INPUTS, list(hidden), NUM_ADVISORIES, rng=gen)
    config = TrainConfig(epochs=epochs, batch_size=64, learning_rate=0.01)
    train_classifier(network, inputs, labels, config, rng=gen)
    return network


def acas_training_properties(
    network: Network,
    count: int = 12,
    radii: tuple[float, ...] = (0.02, 0.05, 0.1),
    rng: int | np.random.Generator | None = 11,
) -> list[RobustnessProperty]:
    """Build the policy-training suite: ``count`` robustness properties.

    Centers are sampled where the network is confident (so most properties
    are verifiable with enough effort) and radii are cycled through several
    sizes so the suite mixes easy, split-requiring, and occasionally
    falsifiable problems — the mix the paper's Bayesian optimization needs
    to distinguish good policies from bad ones.
    """
    if count < 1:
        raise ValueError("count must be positive")
    gen = as_generator(rng)
    properties: list[RobustnessProperty] = []
    attempts = 0
    while len(properties) < count and attempts < count * 200:
        attempts += 1
        center = gen.uniform(0.05, 0.95, size=NUM_INPUTS)
        scores = network.logits(center)
        label = int(np.argmax(scores))
        margin = scores[label] - np.delete(scores, label).max()
        if margin <= 0.05:
            continue
        radius = radii[len(properties) % len(radii)]
        region = Box.linf_ball(center, radius, clip_low=0.0, clip_high=1.0)
        properties.append(
            RobustnessProperty(region, label, name=f"acas-{len(properties)}")
        )
    if len(properties) < count:
        raise RuntimeError(
            "could not find enough confident centers; train the network longer"
        )
    return properties
