"""The Bayesian optimization loop: sample, model, acquire, repeat (§4.2).

Maximizes a black-box function over a box.  Inputs are normalized to the
unit cube internally; the GP uses an RBF kernel with a fixed normalized
lengthscale (robust for the tens-of-dimensions regime the paper targets),
and acquisition is maximized by dense random candidates plus local
refinement of the best few with L-BFGS-B.

The GP model is cached across iterations: :meth:`BayesianOptimizer.observe`
grows the cached Cholesky factor incrementally
(:meth:`~repro.bayesopt.gp.GaussianProcess.extend`, O(n²) per new point)
instead of refitting from scratch (full O(n³) factorization) on every
:meth:`~BayesianOptimizer.suggest`; ``incremental=False`` restores the
refit-per-suggest path, which the test suite pins against the cached one.

:meth:`BayesianOptimizer.suggest_batch` proposes ``q`` points for
*concurrent* evaluation via the constant-liar heuristic (Ginsbourger et
al.'s q-EI approximation): each accepted point is provisionally "observed"
at the worst seen value (the pessimistic liar, which pushes later picks
toward exploration) on a copy of the cached model, and expected
improvement is re-maximized.  ``suggest_batch(1)`` is exactly
``[suggest()]`` — same model, same random stream — which is what makes the
batched trainer's q=1 trace identical to the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import minimize

from repro.bayesopt.acquisition import expected_improvement
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.kernels import RBF
from repro.utils.boxes import Box
from repro.utils.rng import as_generator


@dataclass
class Observation:
    """One evaluated point."""

    x: np.ndarray
    y: float


@dataclass
class OptimizationHistory:
    """Trace of an optimization run (for diagnostics and plots)."""

    observations: list[Observation] = field(default_factory=list)

    @property
    def best_so_far(self) -> list[float]:
        best: list[float] = []
        current = -np.inf
        for obs in self.observations:
            current = max(current, obs.y)
            best.append(current)
        return best


class BayesianOptimizer:
    """Suggest/observe-style Bayesian optimizer over a box domain."""

    def __init__(
        self,
        bounds: Box,
        n_initial: int = 5,
        lengthscale: float = 0.2,
        noise: float = 1e-4,
        candidates: int = 512,
        refine_top: int = 3,
        xi: float = 0.01,
        rng: int | np.random.Generator | None = None,
        incremental: bool = True,
    ) -> None:
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        if candidates < 1:
            raise ValueError("candidates must be >= 1")
        if np.any(bounds.widths <= 0):
            raise ValueError("optimization bounds must have positive width")
        self.bounds = bounds
        self.n_initial = n_initial
        self.lengthscale = lengthscale
        self.noise = noise
        self.candidates = candidates
        self.refine_top = refine_top
        self.xi = xi
        self.incremental = incremental
        self._rng = as_generator(rng)
        self.history = OptimizationHistory()
        # Cached GP model: covers the first _gp_count observations; grown
        # by observe(), invalidated only by a failed extension.
        self._gp: GaussianProcess | None = None
        self._gp_count = 0

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def _to_unit(self, x: np.ndarray) -> np.ndarray:
        return (x - self.bounds.low) / self.bounds.widths

    def _from_unit(self, u: np.ndarray) -> np.ndarray:
        return self.bounds.low + u * self.bounds.widths

    # ------------------------------------------------------------------
    # Suggest / observe
    # ------------------------------------------------------------------

    def _model(self) -> GaussianProcess:
        """The GP over every recorded observation.

        Incremental mode grows the cached Cholesky factor by whatever
        observations arrived since the last call (O(n²) per point); refit
        mode factors from scratch every time — the reference path the
        incremental one is pinned against.
        """
        observations = self.history.observations
        xs = np.stack([self._to_unit(o.x) for o in observations])
        ys = np.array([o.y for o in observations])
        if not self.incremental:
            return GaussianProcess(
                RBF(lengthscale=self.lengthscale, variance=1.0),
                noise=self.noise,
            ).fit(xs, ys)
        if self._gp is None:
            self._gp = GaussianProcess(
                RBF(lengthscale=self.lengthscale, variance=1.0),
                noise=self.noise,
            ).fit(xs, ys)
        elif self._gp_count < len(observations):
            self._gp.extend(xs[self._gp_count :], ys)
        self._gp_count = len(observations)
        return self._gp

    def _acquire(self, gp: GaussianProcess, best: float) -> np.ndarray:
        """Maximize expected improvement under ``gp``; unit-cube point."""

        def neg_acquisition(u: np.ndarray) -> float:
            mean, var = gp.posterior(u.reshape(1, -1))
            return -float(expected_improvement(mean, var, best, self.xi)[0])

        unit_candidates = self._rng.uniform(
            0.0, 1.0, size=(self.candidates, self.bounds.ndim)
        )
        mean, var = gp.posterior(unit_candidates)
        scores = expected_improvement(mean, var, best, self.xi)
        order = np.argsort(-scores)

        best_u = unit_candidates[order[0]]
        best_score = -neg_acquisition(best_u)
        for idx in order[: self.refine_top]:
            result = minimize(
                neg_acquisition,
                unit_candidates[idx],
                method="L-BFGS-B",
                bounds=[(0.0, 1.0)] * self.bounds.ndim,
                options={"maxiter": 30},
            )
            if -result.fun > best_score:
                best_score = -result.fun
                best_u = np.clip(result.x, 0.0, 1.0)
        return best_u

    def suggest(self) -> np.ndarray:
        """The next point to evaluate."""
        n_obs = len(self.history.observations)
        if n_obs < self.n_initial:
            return self.bounds.sample(self._rng)
        gp = self._model()
        best = float(max(o.y for o in self.history.observations))
        return self._from_unit(self._acquire(gp, best))

    def suggest_batch(self, q: int) -> list[np.ndarray]:
        """``q`` points to evaluate *concurrently* (constant-liar q-EI).

        The first point is exactly :meth:`suggest`.  Each further point
        re-maximizes expected improvement on a copy of the model extended
        with the already-picked points "observed" at the worst seen value
        — the pessimistic lie, which marks the picked spots as known-bad
        so the acquisition spreads the batch instead of stacking it.
        Lies never enter the history or the cached model.
        """
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        points = [self.suggest()]
        if q == 1:
            return points
        observations = self.history.observations
        if len(observations) < self.n_initial:
            # Still in the random-initialization phase: the model has
            # nothing to say yet, so the batch is q independent samples.
            points.extend(self.bounds.sample(self._rng) for _ in range(q - 1))
            return points
        ys = [o.y for o in observations]
        lie = float(min(ys))
        best = float(max(ys))
        liar = self._model().copy()
        lied_y = list(ys)
        for _ in range(q - 1):
            lied_y.append(lie)
            liar.extend(
                self._to_unit(points[-1]).reshape(1, -1), np.array(lied_y)
            )
            points.append(self._from_unit(self._acquire(liar, best)))
        return points

    def observe(self, x: np.ndarray, y: float) -> None:
        """Record an evaluation of the objective."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.size != self.bounds.ndim:
            raise ValueError(
                f"point has {x.size} dims, bounds have {self.bounds.ndim}"
            )
        if not np.isfinite(y):
            raise ValueError(f"objective value must be finite, got {y}")
        self.history.observations.append(Observation(x=x, y=float(y)))

    def best(self) -> Observation:
        """The incumbent (best observation so far)."""
        if not self.history.observations:
            raise RuntimeError("no observations yet")
        return max(self.history.observations, key=lambda o: o.y)

    # ------------------------------------------------------------------
    # Convenience loop
    # ------------------------------------------------------------------

    def maximize(
        self,
        func: Callable[[np.ndarray], float],
        n_iter: int,
        callback: Callable[[int, Observation], None] | None = None,
    ) -> Observation:
        """Run ``n_iter`` suggest/evaluate/observe rounds; return the best."""
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        for iteration in range(n_iter):
            x = self.suggest()
            y = float(func(x))
            self.observe(x, y)
            if callback is not None:
                callback(iteration, self.history.observations[-1])
        return self.best()
