"""Acquisition functions for Bayesian optimization (maximization form)."""

from __future__ import annotations

import numpy as np
from scipy.stats import norm


def expected_improvement(
    mean: np.ndarray,
    var: np.ndarray,
    best: float,
    xi: float = 0.01,
) -> np.ndarray:
    """Expected improvement over the incumbent ``best`` (Brochu et al.).

    ``xi`` trades exploration for exploitation: larger values discount the
    posterior mean and favour uncertain regions.
    """
    mean = np.asarray(mean, dtype=np.float64)
    std = np.sqrt(np.maximum(np.asarray(var, dtype=np.float64), 0.0))
    improvement = mean - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    ei = improvement * norm.cdf(z) + std * norm.pdf(z)
    # Zero-variance points improve only if their mean beats the incumbent.
    return np.where(std > 0, np.maximum(ei, 0.0), np.maximum(improvement, 0.0))


def upper_confidence_bound(
    mean: np.ndarray,
    var: np.ndarray,
    beta: float = 2.0,
) -> np.ndarray:
    """GP-UCB: ``mean + beta * std`` — an alternative exploration rule."""
    if beta < 0:
        raise ValueError("beta must be non-negative")
    std = np.sqrt(np.maximum(np.asarray(var, dtype=np.float64), 0.0))
    return np.asarray(mean, dtype=np.float64) + beta * std
