"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def _sqdist(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances: shape ``(n1, n2)``."""
    x1 = np.atleast_2d(x1)
    x2 = np.atleast_2d(x2)
    cross = x1 @ x2.T
    n1 = np.sum(x1 * x1, axis=1)
    n2 = np.sum(x2 * x2, axis=1)
    return np.maximum(n1[:, None] + n2[None, :] - 2.0 * cross, 0.0)


class Kernel(ABC):
    """A positive-semidefinite covariance function."""

    @abstractmethod
    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Covariance matrix between two point sets."""

    def diag(self, x: np.ndarray) -> np.ndarray:
        """``k(x_i, x_i)`` for each row — the prior variance."""
        x = np.atleast_2d(x)
        return np.full(x.shape[0], self.variance)


class RBF(Kernel):
    """Squared-exponential kernel ``σ² exp(-r²/2ℓ²)``.

    Smooth (infinitely differentiable) prior; the default for policy-cost
    surfaces, which are noisy but globally smooth in θ.
    """

    def __init__(self, lengthscale: float = 1.0, variance: float = 1.0) -> None:
        if lengthscale <= 0 or variance <= 0:
            raise ValueError("lengthscale and variance must be positive")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _sqdist(x1, x2) / (self.lengthscale**2)
        return self.variance * np.exp(-0.5 * sq)

    def __repr__(self) -> str:
        return f"RBF(lengthscale={self.lengthscale}, variance={self.variance})"


class Matern52(Kernel):
    """Matérn 5/2 kernel — rougher than RBF, the BayesOpt library default."""

    def __init__(self, lengthscale: float = 1.0, variance: float = 1.0) -> None:
        if lengthscale <= 0 or variance <= 0:
            raise ValueError("lengthscale and variance must be positive")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        r = np.sqrt(_sqdist(x1, x2)) / self.lengthscale
        sqrt5_r = np.sqrt(5.0) * r
        return self.variance * (1.0 + sqrt5_r + 5.0 * r**2 / 3.0) * np.exp(-sqrt5_r)

    def __repr__(self) -> str:
        return f"Matern52(lengthscale={self.lengthscale}, variance={self.variance})"
