"""Bayesian optimization substrate (the BayesOpt-library substitute).

Gaussian-process surrogate + expected-improvement acquisition, following the
paper's §4.2 choices ("we adopt a Gaussian process as our surrogate model and
use expected improvement for the acquisition function").
"""

from repro.bayesopt.kernels import RBF, Matern52
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.acquisition import expected_improvement, upper_confidence_bound
from repro.bayesopt.optimizer import BayesianOptimizer

__all__ = [
    "RBF",
    "Matern52",
    "GaussianProcess",
    "expected_improvement",
    "upper_confidence_bound",
    "BayesianOptimizer",
]
