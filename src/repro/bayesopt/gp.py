"""Gaussian-process regression with a Cholesky solver.

Implements exactly what Bayesian optimization needs: fit observations, then
query posterior means and variances at candidate points.  Targets are
standardized internally so kernel variance 1 is a sensible default.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.bayesopt.kernels import Kernel, RBF

_JITTER = 1e-10


class GaussianProcess:
    """GP regression ``f ~ GP(0, k)`` with homoscedastic noise."""

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-6) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel or RBF()
        self.noise = float(noise)
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fit(self) -> bool:
        return self._x is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(x, y)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
        if y.size == 0:
            raise ValueError("cannot fit a GP on zero observations")
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y)) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        cov = self.kernel(x, x)
        cov[np.diag_indices_from(cov)] += self.noise + _JITTER
        self._chol = cho_factor(cov, lower=True)
        self._alpha = cho_solve(self._chol, y_norm)
        self._x = x
        self._y_norm = y_norm
        return self

    def posterior(self, xq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at query points (de-standardized)."""
        if not self.is_fit:
            raise RuntimeError("fit() must be called before posterior()")
        xq = np.atleast_2d(np.asarray(xq, dtype=np.float64))
        k_star = self.kernel(xq, self._x)
        mean_norm = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var_norm = self.kernel.diag(xq) - np.sum(k_star * v.T, axis=1)
        var_norm = np.maximum(var_norm, 0.0)
        mean = mean_norm * self._y_std + self._y_mean
        var = var_norm * self._y_std**2
        return mean, var

    def log_marginal_likelihood(self) -> float:
        """Log evidence of the standardized targets under the prior."""
        if not self.is_fit:
            raise RuntimeError("fit() must be called before the likelihood")
        n = self._x.shape[0]
        chol_matrix = self._chol[0]
        log_det = 2.0 * float(np.sum(np.log(np.diag(chol_matrix))))
        fit_term = float(self._y_norm @ self._alpha)
        return -0.5 * (fit_term + log_det + n * np.log(2.0 * np.pi))
