"""Gaussian-process regression with a Cholesky solver.

Implements exactly what Bayesian optimization needs: fit observations, then
query posterior means and variances at candidate points.  Targets are
standardized internally so kernel variance 1 is a sensible default.

The Cholesky factor can grow *incrementally*: :meth:`GaussianProcess.extend`
appends observations by solving one triangular system and factoring the
new rows' Schur complement — O(n²m) against the O(n³) full refit — while
target standardization (which shifts with every new y) is refreshed by an
O(n²) solve against the cached factor.  This is what makes per-iteration
model updates and constant-liar batch suggestions cheap inside the
Bayesian-optimization loop.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import LinAlgError, cho_solve, cholesky, solve_triangular

from repro.bayesopt.kernels import Kernel, RBF

_JITTER = 1e-10


class GaussianProcess:
    """GP regression ``f ~ GP(0, k)`` with homoscedastic noise."""

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-6) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel or RBF()
        self.noise = float(noise)
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fit(self) -> bool:
        return self._x is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(x, y)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
        if y.size == 0:
            raise ValueError("cannot fit a GP on zero observations")
        cov = self.kernel(x, x)
        cov[np.diag_indices_from(cov)] += self.noise + _JITTER
        # scipy.linalg.cholesky calls the same LAPACK potrf as cho_factor
        # but returns a *clean* triangle (the other half zeroed), which is
        # what lets extend() stack the factor blockwise.
        self._chol = (cholesky(cov, lower=True), True)
        self._x = x
        self._refit_targets(y)
        return self

    def extend(self, x_new: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Append observations to a fitted GP without a full refactor.

        ``x_new`` holds the new input rows; ``y`` holds *all* targets (old
        then new, ``n + m`` of them) because standardization shifts with
        every new observation.  The cached Cholesky factor grows by the
        new rows' Schur complement:

        .. math::
           K' = \\begin{pmatrix} K & B \\\\ B^T & C \\end{pmatrix}
           \\Rightarrow
           L' = \\begin{pmatrix} L & 0 \\\\ (L^{-1}B)^T & \\mathrm{chol}(C - B^T L^{-T} L^{-1} B) \\end{pmatrix}

        A Schur complement that loses positive definiteness to round-off
        (near-duplicate inputs) falls back to a full :meth:`fit`.
        """
        if not self.is_fit:
            return self.fit(x_new, y)
        x_new = np.atleast_2d(np.asarray(x_new, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        n, m = self._x.shape[0], x_new.shape[0]
        if y.size != n + m:
            raise ValueError(
                f"extend() needs all targets: have {n} + {m} inputs "
                f"but {y.size} targets"
            )
        if m == 0:
            self._refit_targets(y)
            return self
        chol = self._chol[0]
        cross = self.kernel(self._x, x_new)
        head = solve_triangular(chol, cross, lower=True)
        tail_cov = self.kernel(x_new, x_new)
        tail_cov[np.diag_indices_from(tail_cov)] += self.noise + _JITTER
        schur = tail_cov - head.T @ head
        try:
            tail = cholesky(schur, lower=True)
        except LinAlgError:
            return self.fit(np.vstack([self._x, x_new]), y)
        grown = np.zeros((n + m, n + m))
        grown[:n, :n] = chol
        grown[n:, :n] = head.T
        grown[n:, n:] = tail
        self._chol = (grown, True)
        self._x = np.vstack([self._x, x_new])
        self._refit_targets(y)
        return self

    def copy(self) -> "GaussianProcess":
        """An independent GP sharing nothing mutable with this one.

        Fitted state is copied, so the clone can :meth:`extend` with
        speculative observations (constant-liar batches) without touching
        the original.
        """
        clone = GaussianProcess(self.kernel, noise=self.noise)
        if self.is_fit:
            clone._x = self._x.copy()
            clone._chol = (self._chol[0].copy(), True)
            clone._alpha = self._alpha.copy()
            clone._y_norm = self._y_norm.copy()
            clone._y_mean = self._y_mean
            clone._y_std = self._y_std
        return clone

    def _refit_targets(self, y: np.ndarray) -> None:
        """Restandardize targets and recompute ``alpha`` (O(n²))."""
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y)) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        self._alpha = cho_solve(self._chol, y_norm)
        self._y_norm = y_norm

    def posterior(self, xq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at query points (de-standardized)."""
        if not self.is_fit:
            raise RuntimeError("fit() must be called before posterior()")
        xq = np.atleast_2d(np.asarray(xq, dtype=np.float64))
        k_star = self.kernel(xq, self._x)
        mean_norm = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var_norm = self.kernel.diag(xq) - np.sum(k_star * v.T, axis=1)
        var_norm = np.maximum(var_norm, 0.0)
        mean = mean_norm * self._y_std + self._y_mean
        var = var_norm * self._y_std**2
        return mean, var

    def log_marginal_likelihood(self) -> float:
        """Log evidence of the standardized targets under the prior."""
        if not self.is_fit:
            raise RuntimeError("fit() must be called before the likelihood")
        n = self._x.shape[0]
        chol_matrix = self._chol[0]
        log_det = 2.0 * float(np.sum(np.log(np.diag(chol_matrix))))
        fit_term = float(self._y_norm @ self._alpha)
        return -0.5 * (fit_term + log_det + n * np.log(2.0 * np.pi))
