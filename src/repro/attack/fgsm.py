"""The fast gradient sign method (Goodfellow et al.), adapted to boxes.

A single maximal sign step from a start point, projected back onto the
region.  Cheaper than PGD; the paper's framework can swap it in as the
``Minimize`` routine (§8 notes the method is agnostic to the optimizer).
"""

from __future__ import annotations

import numpy as np

from repro.attack.objective import MarginObjective
from repro.utils.boxes import Box


def fgsm_step(
    objective: MarginObjective,
    region: Box,
    start: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """One full-width sign step against the margin from ``start``.

    Returns the better of the start and the stepped point (FGSM can
    overshoot on non-linear networks).
    """
    x0 = region.project(start if start is not None else region.center)
    f0, grad = objective.value_and_gradient(x0)
    x1 = region.project(x0 - region.widths * np.sign(grad))
    f1 = objective.value(x1)
    if f1 < f0:
        return x1, f1
    return x0, f0
