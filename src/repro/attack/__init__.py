"""Gradient-based counterexample search (the optimization half of Charon).

- :mod:`repro.attack.objective` — the margin objective ``F`` (Eq. 2).
- :mod:`repro.attack.pgd` — projected gradient descent over box regions.
- :mod:`repro.attack.fgsm` — the fast gradient sign method.
- :mod:`repro.attack.search` — the ``Minimize`` step of Algorithm 1.
"""

from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize, pgd_minimize_batch
from repro.attack.fgsm import fgsm_step
from repro.attack.search import SearchResult, find_counterexample

__all__ = [
    "MarginObjective",
    "PGDConfig",
    "pgd_minimize",
    "pgd_minimize_batch",
    "fgsm_step",
    "SearchResult",
    "find_counterexample",
]
