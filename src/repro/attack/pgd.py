"""Projected gradient descent over a box region (the paper's Minimize).

Minimizes the margin objective with sign-scaled steps (the L∞-natural update
used by Madry et al.'s PGD) followed by Euclidean projection back onto the
box.  Multiple restarts — the box center plus uniform random points — guard
against the local minima that motivate the paper's region splitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.objective import MarginObjective
from repro.utils.boxes import Box
from repro.utils.rng import as_generator
from repro.utils.timing import Deadline


@dataclass(frozen=True)
class PGDConfig:
    """PGD hyper-parameters.

    Attributes:
        steps: gradient steps per restart.
        restarts: total starts (the first is always the region center).
        step_fraction: per-dimension step = ``step_fraction * width_d``;
            decays linearly to a tenth of itself over the run.
        stop_below: early-exit as soon as ``F(x) <= stop_below`` (set this
            to the verifier's δ so falsification returns immediately).
    """

    steps: int = 40
    restarts: int = 2
    step_fraction: float = 0.1
    stop_below: float = 0.0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")
        if not 0.0 < self.step_fraction <= 1.0:
            raise ValueError("step_fraction must lie in (0, 1]")


def pgd_minimize(
    objective: MarginObjective,
    region: Box,
    config: PGDConfig | None = None,
    rng: int | np.random.Generator | None = None,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, float]:
    """Best point found and its objective value.

    The returned point always lies inside ``region``.
    """
    config = config or PGDConfig()
    gen = as_generator(rng)
    starts = [region.center]
    for _ in range(config.restarts - 1):
        starts.append(region.sample(gen))

    best_x = starts[0]
    best_f = objective.value(best_x)
    base_step = config.step_fraction * region.widths
    for start in starts:
        x = region.project(start)
        for step in range(config.steps):
            if deadline is not None and deadline.expired():
                return best_x, best_f
            f, grad = objective.value_and_gradient(x)
            if f < best_f:
                best_x, best_f = x.copy(), f
            if best_f <= config.stop_below:
                return best_x, best_f
            direction = np.sign(grad)
            if not direction.any():
                # Dead-ReLU plateau: the margin is locally constant, so the
                # gradient carries no information.  Take a random direction
                # to escape (a restart in miniature).
                direction = gen.choice([-1.0, 1.0], size=x.size)
            decay = 1.0 - 0.9 * (step / config.steps)
            x = region.project(x - decay * base_step * direction)
        f = objective.value(x)
        if f < best_f:
            best_x, best_f = x.copy(), f
        if best_f <= config.stop_below:
            return best_x, best_f
    return best_x, best_f
