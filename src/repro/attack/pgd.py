"""Projected gradient descent over box regions (the paper's Minimize).

Minimizes the margin objective with sign-scaled steps (the L∞-natural update
used by Madry et al.'s PGD) followed by Euclidean projection back onto the
box.  Multiple restarts — the box center plus uniform random points — guard
against the local minima that motivate the paper's region splitting.

The kernel is *batched*: all restarts of a region — and restarts of many
regions at once — advance in lockstep as one ``(B, n)`` batch through the
network, so every affine layer runs as a single GEMM instead of ``B`` GEMVs.
:func:`pgd_minimize` is the single-region convenience wrapper over the same
kernel, which keeps the sequential and batched verification engines on
identical arithmetic per region: a region's trajectory depends only on its
own randomness, never on which other regions share the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attack.objective import MarginObjective, MultiLabelMarginObjective
from repro.obs.metrics import registry as _metrics_registry
from repro.utils.boxes import Box
from repro.utils.rng import as_generator, spawn
from repro.utils.timing import Deadline

#: Semantic kernel-work counters, shared with the Analyze side
#: (:mod:`repro.abstract.analyzer` registers the same ``kernel`` group).
#: ``*_batches`` counts kernel invocations, ``*_rows`` the regions they
#: carried — executor-invariant quantities: a Process run's merged
#: totals must equal a Serial run's (pinned by the scheduler's metrics
#: equality test).
_KERNEL_COUNTERS = _metrics_registry().group(
    "kernel", ("pgd_batches", "pgd_rows", "analyze_batches", "analyze_rows")
)


@dataclass(frozen=True)
class PGDConfig:
    """PGD hyper-parameters.

    Attributes:
        steps: gradient steps per restart.
        restarts: total starts (the first is always the region center).
        step_fraction: per-dimension step = ``step_fraction * width_d``;
            decays linearly to a tenth of itself over the run.
        stop_below: early-exit as soon as ``F(x) <= stop_below`` (set this
            to the verifier's δ so falsification returns immediately).
    """

    steps: int = 40
    restarts: int = 2
    step_fraction: float = 0.1
    stop_below: float = 0.0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")
        if not 0.0 < self.step_fraction <= 1.0:
            raise ValueError("step_fraction must lie in (0, 1]")


def _normalize_rngs(
    rngs, count: int
) -> list[np.random.Generator]:
    """One independent generator per region.

    A sequence is used as-is (one entry per region); anything else is
    normalized through :func:`as_generator` and — when several regions are
    minimized together — spawned into per-region streams so that a region's
    randomness never depends on its batch companions.
    """
    if isinstance(rngs, (list, tuple)):
        if len(rngs) != count:
            raise ValueError(
                f"got {len(rngs)} generators for {count} regions"
            )
        return [as_generator(g) for g in rngs]
    gen = as_generator(rngs)
    if count == 1:
        return [gen]
    return spawn(gen, count)


def pgd_minimize_batch(
    objective: MarginObjective,
    regions: Sequence[Box],
    config: PGDConfig | None = None,
    rngs=None,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimize ``objective`` over every region at once.

    Returns ``(best_x, best_f)`` with shapes ``(R, n)`` and ``(R,)``; row
    ``i`` always lies inside ``regions[i]``.

    All ``R * restarts`` trajectories advance in lockstep; a per-region
    early-exit mask freezes every row of a region as soon as its best value
    drops to ``stop_below``, and frozen regions stop consuming randomness —
    which is what keeps a region's result identical whether it is minimized
    alone or inside a larger batch.
    """
    if not regions:
        raise ValueError("need at least one region")
    _KERNEL_COUNTERS["pgd_batches"] += 1
    _KERNEL_COUNTERS["pgd_rows"] += len(regions)
    config = config or PGDConfig()
    gens = _normalize_rngs(rngs, len(regions))
    n = regions[0].ndim
    num_regions = len(regions)
    restarts = config.restarts
    rows = num_regions * restarts

    lows = np.empty((num_regions, n))
    highs = np.empty((num_regions, n))
    starts = np.empty((rows, n))
    for i, region in enumerate(regions):
        if region.ndim != n:
            raise ValueError("all regions must share one dimensionality")
        lows[i] = region.low
        highs[i] = region.high
        start_rows = starts[i * restarts : (i + 1) * restarts]
        start_rows[0] = region.center
        if restarts > 1:
            start_rows[1:] = region.sample(gens[i], restarts - 1)

    # Per-row projection bounds (each region's rows share its box).
    row_low = np.repeat(lows, restarts, axis=0)
    row_high = np.repeat(highs, restarts, axis=0)
    base_step = np.repeat(
        config.step_fraction * (highs - lows), restarts, axis=0
    )
    row_region = np.repeat(np.arange(num_regions), restarts)

    x = np.clip(starts, row_low, row_high)
    centers = x[::restarts]
    best_x = centers.copy()
    best_f = objective.value_batch(centers)

    # active[i] False once region i hit stop_below (or we ran out of time).
    active = best_f > config.stop_below
    if not active.any():
        return best_x, best_f

    def _fold_best(f: np.ndarray) -> None:
        """Per-region best: the first strictly-improving row wins."""
        per_region = f.reshape(num_regions, restarts)
        winners = per_region.argmin(axis=1)
        f_min = per_region[np.arange(num_regions), winners]
        update = active & (f_min < best_f)
        if update.any():
            best_f[update] = f_min[update]
            best_x[update] = x.reshape(num_regions, restarts, n)[
                update, winners[update]
            ]

    for step in range(config.steps):
        if deadline is not None and deadline.expired():
            return best_x, best_f
        f, grad = objective.value_and_gradient_batch(x)
        _fold_best(f)
        active &= best_f > config.stop_below
        if not active.any():
            return best_x, best_f

        direction = np.sign(grad)
        row_active = active[row_region]
        # Dead-ReLU plateau: the margin is locally constant, so the gradient
        # carries no information.  Take a random direction to escape (a
        # restart in miniature) — drawn from the row's own region stream so
        # batching never changes a region's trajectory.
        flat = row_active & ~direction.any(axis=1)
        for r in np.flatnonzero(flat):
            direction[r] = gens[row_region[r]].choice([-1.0, 1.0], size=n)
        decay = 1.0 - 0.9 * (step / config.steps)
        stepped = np.clip(x - decay * base_step * direction, row_low, row_high)
        x = np.where(row_active[:, None], stepped, x)

    # Final positions of still-active regions get one last evaluation.
    if active.any():
        _fold_best(objective.value_batch(x))
    return best_x, best_f


def pgd_minimize_entry(payload: dict) -> tuple[np.ndarray, np.ndarray]:
    """Process-worker entry point for a marshalled fused Minimize call.

    Rebuilds the margin objective from the network handle plus the label
    vector, the regions from their stacked bound arrays, and runs
    :func:`pgd_minimize_batch` — identical arithmetic to the in-process
    call (pickle and ``.npz`` round-trips preserve float64 bit patterns,
    and the per-region generators arrive with their exact state).  See
    :mod:`repro.exec.calls` for the payload contract.
    """
    from repro.exec.calls import resolve_network

    network = resolve_network(payload["network"])
    if payload["multi"]:
        objective = MultiLabelMarginObjective(network, payload["labels"])
    else:
        objective = MarginObjective(network, int(payload["labels"]))
    regions = [
        Box(low, high) for low, high in zip(payload["lows"], payload["highs"])
    ]
    return pgd_minimize_batch(
        objective,
        regions,
        payload["config"],
        payload["rngs"],
        payload["deadline"],
    )


def pgd_minimize(
    objective: MarginObjective,
    region: Box,
    config: PGDConfig | None = None,
    rng: int | np.random.Generator | None = None,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, float]:
    """Best point found and its objective value.

    The returned point always lies inside ``region``.  This is the
    single-region view of :func:`pgd_minimize_batch`, so sequential and
    batched verification run identical per-region arithmetic.
    """
    best_x, best_f = pgd_minimize_batch(
        objective, [region], config, [as_generator(rng)], deadline
    )
    return best_x[0], float(best_f[0])
