"""The adversarial objective ``F(x) = N(x)_K - max_{j≠K} N(x)_j`` (Eq. 2).

``F(x) <= 0`` at a point in the input region means some other class scores
at least as high as the target class — a true adversarial counterexample.
``F(x) <= δ`` is the paper's δ-counterexample condition (Definition 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import Network


class MarginObjective:
    """Callable margin objective with (sub)gradients.

    ``F`` is piecewise differentiable; at points where several non-target
    classes tie for the max we take the subgradient of the first maximizer,
    which is the standard choice for PGD on margin losses.
    """

    def __init__(self, network: Network, label: int) -> None:
        if not 0 <= label < network.output_size:
            raise ValueError(
                f"label {label} out of range for {network.output_size} outputs"
            )
        if network.output_size < 2:
            raise ValueError("margin objective needs at least two classes")
        self.network = network
        self.label = label

    def value(self, x: np.ndarray) -> float:
        scores = self.network.logits(x)
        others = np.delete(scores, self.label)
        return float(scores[self.label] - others.max())

    def __call__(self, x: np.ndarray) -> float:
        return self.value(x)

    def _runner_up(self, scores: np.ndarray) -> int:
        """Index of the best-scoring class other than the target."""
        masked = scores.copy()
        masked[self.label] = -np.inf
        return int(np.argmax(masked))

    def value_and_gradient(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """``(F(x), ∇F(x))`` in one forward+backward pass."""
        scores = self.network.logits(x)
        j = self._runner_up(scores)
        seed = np.zeros(self.network.output_size)
        seed[self.label] = 1.0
        seed[j] = -1.0
        grad = self.network.input_gradient(x, seed)
        return float(scores[self.label] - scores[j]), grad

    # ------------------------------------------------------------------
    # Batched evaluation (the GEMM-shaped path used by batched PGD)
    # ------------------------------------------------------------------

    def value_batch(self, x: np.ndarray) -> np.ndarray:
        """``F`` at every row of ``x``: shape ``(B,)``."""
        scores = self.network.forward(np.atleast_2d(x))
        masked = scores.copy()
        masked[:, self.label] = -np.inf
        return scores[:, self.label] - masked.max(axis=1)

    def value_and_gradient_batch(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(F, ∇F)`` for a whole batch: shapes ``(B,)`` and ``(B, n)``.

        One forward plus one input-only backward pass; each affine layer is
        a single GEMM over the batch instead of ``B`` GEMVs.
        """
        x = np.atleast_2d(x)
        scores, caches = self.network.forward_cached(x)
        masked = scores.copy()
        masked[:, self.label] = -np.inf
        runners = np.argmax(masked, axis=1)
        rows = np.arange(scores.shape[0])
        values = scores[:, self.label] - scores[rows, runners]
        seeds = np.zeros_like(scores)
        seeds[:, self.label] = 1.0
        seeds[rows, runners] = -1.0  # runner-up is never the label
        grads = self.network.backward_input(caches, seeds)
        return values, grads.reshape(x.shape[0], -1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.value_and_gradient(x)[1]

    def target_gradient(self, x: np.ndarray) -> np.ndarray:
        """``∇ N(x)_K`` — used by the partition policy's influence feature."""
        seed = np.zeros(self.network.output_size)
        seed[self.label] = 1.0
        return self.network.input_gradient(x, seed)


class MultiLabelMarginObjective:
    """Batched margin objective with a *per-region* target label.

    The multi-property scheduler (:mod:`repro.sched`) fuses sub-regions of
    different properties of the same network into one PGD batch; those
    properties generally disagree on the target class ``K``, so the margin
    is evaluated with one label per region instead of one label per
    objective.  Row ``i`` of every batch computes exactly the arithmetic
    :class:`MarginObjective` with ``labels[i]`` would compute on the same
    batch, which is what keeps cross-property sweeps faithful to
    per-property runs (up to the BLAS round-off that comes with a
    different batch height, exactly as for the PR 1 batched kernels).

    The batched PGD kernel evaluates either one row per region (restart
    folding) or ``restarts`` contiguous rows per region (lockstep steps), so
    batches always arrive as whole region blocks in region-major order; the
    label vector is repeated to match.
    """

    def __init__(self, network: Network, labels) -> None:
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if labels.size == 0:
            raise ValueError("need at least one label")
        if network.output_size < 2:
            raise ValueError("margin objective needs at least two classes")
        if np.any(labels < 0) or np.any(labels >= network.output_size):
            bad = labels[(labels < 0) | (labels >= network.output_size)][0]
            raise ValueError(
                f"label {bad} out of range for {network.output_size} outputs"
            )
        self.network = network
        self.labels = labels

    def _row_labels(self, rows: int) -> np.ndarray:
        if rows % self.labels.size != 0:
            raise ValueError(
                f"batch of {rows} rows is not whole region blocks of "
                f"{self.labels.size} labels"
            )
        return np.repeat(self.labels, rows // self.labels.size)

    def value_batch(self, x: np.ndarray) -> np.ndarray:
        """``F`` at every row of ``x`` under that row's region label."""
        x = np.atleast_2d(x)
        labels = self._row_labels(x.shape[0])
        scores = self.network.forward(x)
        rows = np.arange(scores.shape[0])
        masked = scores.copy()
        masked[rows, labels] = -np.inf
        return scores[rows, labels] - masked.max(axis=1)

    def value_and_gradient_batch(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(F, ∇F)`` per row, each under its region's label."""
        x = np.atleast_2d(x)
        labels = self._row_labels(x.shape[0])
        scores, caches = self.network.forward_cached(x)
        rows = np.arange(scores.shape[0])
        masked = scores.copy()
        masked[rows, labels] = -np.inf
        runners = np.argmax(masked, axis=1)
        values = scores[rows, labels] - scores[rows, runners]
        seeds = np.zeros_like(scores)
        seeds[rows, labels] = 1.0
        seeds[rows, runners] = -1.0  # runner-up is never the label
        grads = self.network.backward_input(caches, seeds)
        return values, grads.reshape(x.shape[0], -1)
