"""The adversarial objective ``F(x) = N(x)_K - max_{j≠K} N(x)_j`` (Eq. 2).

``F(x) <= 0`` at a point in the input region means some other class scores
at least as high as the target class — a true adversarial counterexample.
``F(x) <= δ`` is the paper's δ-counterexample condition (Definition 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import Network


class MarginObjective:
    """Callable margin objective with (sub)gradients.

    ``F`` is piecewise differentiable; at points where several non-target
    classes tie for the max we take the subgradient of the first maximizer,
    which is the standard choice for PGD on margin losses.
    """

    def __init__(self, network: Network, label: int) -> None:
        if not 0 <= label < network.output_size:
            raise ValueError(
                f"label {label} out of range for {network.output_size} outputs"
            )
        if network.output_size < 2:
            raise ValueError("margin objective needs at least two classes")
        self.network = network
        self.label = label

    def value(self, x: np.ndarray) -> float:
        scores = self.network.logits(x)
        others = np.delete(scores, self.label)
        return float(scores[self.label] - others.max())

    def __call__(self, x: np.ndarray) -> float:
        return self.value(x)

    def _runner_up(self, scores: np.ndarray) -> int:
        """Index of the best-scoring class other than the target."""
        masked = scores.copy()
        masked[self.label] = -np.inf
        return int(np.argmax(masked))

    def value_and_gradient(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """``(F(x), ∇F(x))`` in one forward+backward pass."""
        scores = self.network.logits(x)
        j = self._runner_up(scores)
        seed = np.zeros(self.network.output_size)
        seed[self.label] = 1.0
        seed[j] = -1.0
        grad = self.network.input_gradient(x, seed)
        return float(scores[self.label] - scores[j]), grad

    # ------------------------------------------------------------------
    # Batched evaluation (the GEMM-shaped path used by batched PGD)
    # ------------------------------------------------------------------

    def value_batch(self, x: np.ndarray) -> np.ndarray:
        """``F`` at every row of ``x``: shape ``(B,)``."""
        scores = self.network.forward(np.atleast_2d(x))
        masked = scores.copy()
        masked[:, self.label] = -np.inf
        return scores[:, self.label] - masked.max(axis=1)

    def value_and_gradient_batch(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(F, ∇F)`` for a whole batch: shapes ``(B,)`` and ``(B, n)``.

        One forward plus one input-only backward pass; each affine layer is
        a single GEMM over the batch instead of ``B`` GEMVs.
        """
        x = np.atleast_2d(x)
        scores, caches = self.network.forward_cached(x)
        masked = scores.copy()
        masked[:, self.label] = -np.inf
        runners = np.argmax(masked, axis=1)
        rows = np.arange(scores.shape[0])
        values = scores[:, self.label] - scores[rows, runners]
        seeds = np.zeros_like(scores)
        seeds[:, self.label] = 1.0
        seeds[rows, runners] = -1.0  # runner-up is never the label
        grads = self.network.backward_input(caches, seeds)
        return values, grads.reshape(x.shape[0], -1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.value_and_gradient(x)[1]

    def target_gradient(self, x: np.ndarray) -> np.ndarray:
        """``∇ N(x)_K`` — used by the partition policy's influence feature."""
        seed = np.zeros(self.network.output_size)
        seed[self.label] = 1.0
        return self.network.input_gradient(x, seed)
