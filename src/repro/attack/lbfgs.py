"""Box-constrained L-BFGS counterexample search.

Szegedy et al.'s original adversarial-example construction used L-BFGS;
the paper (§8) notes Charon could use "alternative gradient-based
optimization methods" interchangeably.  This module provides that
alternative ``Minimize`` implementation on top of scipy's L-BFGS-B, with
the box region expressed as variable bounds.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.attack.objective import MarginObjective
from repro.utils.boxes import Box
from repro.utils.rng import as_generator


def lbfgs_minimize(
    objective: MarginObjective,
    region: Box,
    restarts: int = 2,
    max_iter: int = 60,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, float]:
    """Minimize the margin objective with multi-start L-BFGS-B.

    Returns the best point found (always inside ``region``) and its value.
    L-BFGS exploits curvature, which often beats sign-step PGD on smooth
    stretches of the margin surface but can stall on ReLU kinks — the same
    trade-off the adversarial-examples literature reports.
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    gen = as_generator(rng)
    bounds = list(zip(region.low, region.high))

    def value_and_grad(x: np.ndarray) -> tuple[float, np.ndarray]:
        return objective.value_and_gradient(x)

    starts = [region.center] + [region.sample(gen) for _ in range(restarts - 1)]
    best_x = region.project(starts[0])
    best_f = objective.value(best_x)
    for start in starts:
        result = minimize(
            value_and_grad,
            region.project(start),
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": max_iter},
        )
        candidate = region.project(result.x)
        f = objective.value(candidate)
        if f < best_f:
            best_x, best_f = candidate, f
    return best_x, best_f
