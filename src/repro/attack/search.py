"""The ``Minimize`` step of Algorithm 1, packaged for the verifier."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize
from repro.core.property import RobustnessProperty
from repro.nn.network import Network
from repro.utils.rng import as_generator
from repro.utils.timing import Deadline


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one counterexample search.

    Attributes:
        x_star: the best point found (always inside the region).
        value: ``F(x_star)`` — non-positive means a true counterexample.
    """

    x_star: np.ndarray
    value: float

    def is_counterexample(self, delta: float = 0.0) -> bool:
        """The paper's line-3 check: ``F(x*) <= δ``."""
        return self.value <= delta


def find_counterexample(
    network: Network,
    prop: RobustnessProperty,
    config: PGDConfig | None = None,
    rng: int | np.random.Generator | None = None,
    deadline: Deadline | None = None,
) -> SearchResult:
    """Run PGD on ``F`` over the property's region."""
    objective = MarginObjective(network, prop.label)
    x_star, value = pgd_minimize(
        objective, prop.region, config, as_generator(rng), deadline
    )
    return SearchResult(x_star=np.asarray(x_star), value=value)
