"""Multi-property verification scheduling (the §6 parallelism, cross-property).

The paper treats every sub-region as an independent work item; PR 1's
batched engine exploited that *within* one property.  This package widens
the scope to whole job manifests: many (network, property) pairs drive one
shared frontier so fused PGD/Analyze sweeps mix sub-regions from different
properties of the same network and keep every ``batch_size`` slot full.

- :mod:`repro.sched.job` — :class:`VerificationJob` / :class:`JobQueue`.
- :mod:`repro.sched.frontier` — FIFO / DFS / hardest-first frontier
  policies plus the adaptive batch-width controller.
- :mod:`repro.sched.cache` — the persistent content-addressed result
  cache (network/property/config digests, certified-radius queries).
- :mod:`repro.sched.scheduler` — the :class:`Scheduler` engine and its
  :class:`ScheduleReport`.

Per-job results are independent of scheduling — identical to solo
``BatchedVerifier`` runs up to the same BLAS-kernel round-off budget the
PR 1 engines share (fusing changes GEMM operand shapes, nothing else; the
equivalence tests pin exact-equal witnesses and counters on the stock
numpy build); see DESIGN.md §6.
"""

from repro.sched.cache import (
    CacheRecord,
    PruneResult,
    ResultCache,
    cacheable,
    config_digest,
    job_key,
    point_digest,
    policy_digest,
    property_digest,
)
from repro.sched.frontier import (
    FRONTIER_POLICIES,
    AdaptiveBatchController,
    DfsFrontier,
    FifoFrontier,
    FixedBatchController,
    FrontierPolicy,
    PriorityFrontier,
    make_frontier,
)
from repro.sched.job import JobQueue, VerificationJob
from repro.sched.scheduler import (
    SCHED_ENGINES,
    JobResult,
    ScheduleReport,
    Scheduler,
)

__all__ = [
    "VerificationJob",
    "JobQueue",
    "Scheduler",
    "ScheduleReport",
    "JobResult",
    "SCHED_ENGINES",
    "FrontierPolicy",
    "FifoFrontier",
    "DfsFrontier",
    "PriorityFrontier",
    "FRONTIER_POLICIES",
    "make_frontier",
    "AdaptiveBatchController",
    "FixedBatchController",
    "PruneResult",
    "ResultCache",
    "CacheRecord",
    "cacheable",
    "job_key",
    "property_digest",
    "policy_digest",
    "config_digest",
    "point_digest",
]
