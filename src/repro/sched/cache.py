"""Persistent, content-addressed verification result cache.

Every decided job (verified or falsified) is recorded under a sha256 key of
``(network digest, property digest, config digest, policy digest, seed)``:

- the **network digest** (:func:`repro.nn.serialize.network_digest`) covers
  architecture and every parameter bit, so retraining or editing a network
  can never serve stale results;
- the **property digest** covers the region's float64 bit patterns and the
  target label;
- the **config digest** covers every outcome-relevant knob — δ, depth cap,
  split fraction, PGD budget, and ``batch_size`` (chunk width changes which
  witness a falsified run reports) — but deliberately *not* the wall-clock
  timeout: a cached Verified/Falsified record is a proof or a concrete
  witness, both valid under any budget.  Timeouts are never cached for the
  same reason in reverse — they are budget artifacts, not results.

Records live one-per-file under a two-level fan-out directory (like git's
object store), written atomically (temp file + rename) so concurrent
scheduler runs can share a cache directory.

Beyond exact-key lookups the cache answers **certified-radius queries**:
jobs created from L∞ manifests record ``center_digest`` and ``epsilon``
metadata, and :meth:`ResultCache.radius_bounds` folds every cached record
for a (network, center) pair into the tightest known bracket — the largest
verified radius and the smallest falsified radius.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy
from repro.core.property import RobustnessProperty
from repro.core.results import (
    Falsified,
    Timeout,
    Verified,
    VerificationStats,
)
from repro.nn.network import Network
from repro.nn.serialize import network_digest


def _sha256(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def property_digest(prop: RobustnessProperty) -> str:
    """Content address of a property: region bit patterns plus label."""
    return _sha256(
        np.ascontiguousarray(prop.region.low, dtype=np.float64).tobytes(),
        np.ascontiguousarray(prop.region.high, dtype=np.float64).tobytes(),
        str(prop.label).encode(),
    )


def point_digest(x: np.ndarray) -> str:
    """Content address of a concrete input point (for radius queries)."""
    return _sha256(np.ascontiguousarray(x, dtype=np.float64).tobytes())


def policy_digest(policy: VerificationPolicy) -> str:
    """Content address of a policy's decision function.

    Parameterized policies (anything exposing ``to_vector``) hash their
    exact parameter bits; hand-crafted policies hash their ``describe()``
    string, which encodes every constructor knob.
    """
    to_vector = getattr(policy, "to_vector", None)
    if callable(to_vector):
        vec = np.ascontiguousarray(to_vector(), dtype=np.float64)
        return _sha256(type(policy).__name__.encode(), vec.tobytes())
    return _sha256(type(policy).__name__.encode(), policy.describe().encode())


def config_digest(config: VerifierConfig) -> str:
    """Content address of the outcome-relevant verifier knobs.

    Excludes ``timeout`` (see the module docstring); includes the PGD
    budget and ``batch_size`` because both shape which witness a falsified
    run returns.
    """
    payload = json.dumps(
        {
            "delta": config.delta,
            "max_depth": config.max_depth,
            "min_split_fraction": config.min_split_fraction,
            "batch_size": config.batch_size,
            "pgd": {
                "steps": config.pgd.steps,
                "restarts": config.pgd.restarts,
                "step_fraction": config.pgd.step_fraction,
            },
        },
        sort_keys=True,
    )
    return _sha256(payload.encode())


def job_key(
    net_digest: str,
    prop: RobustnessProperty,
    config: VerifierConfig,
    policy: VerificationPolicy,
    seed: int,
) -> str:
    """The cache key of one verification job.

    The key identifies the *decision procedure instance* — network,
    property, knobs, policy, seed.  It deliberately carries no engine
    tag: every scheduler engine implements ``BatchedVerifier`` semantics
    per job (the reproducibility contract), so their results are
    interchangeable and may serve each other.
    """
    return _sha256(
        net_digest.encode(),
        property_digest(prop).encode(),
        config_digest(config).encode(),
        policy_digest(policy).encode(),
        str(int(seed)).encode(),
    )


@dataclass(frozen=True)
class CacheRecord:
    """One decided outcome, with enough context for radius queries.

    Attributes:
        kind: ``"verified"`` or ``"falsified"``.
        margin: the witness margin for falsified records.
        counterexample: the witness point for falsified records.
        stats: the recorded run's counters (pgd/analyze/splits/...).
        network_digest: content address of the analyzed network.
        label: the property's target class.
        metadata: caller-provided job metadata (e.g. ``center_digest`` and
            ``epsilon`` for L∞ jobs).
        created_unix: record creation time (seconds since the epoch).
    """

    kind: str
    margin: float | None = None
    counterexample: list | None = None
    stats: dict = field(default_factory=dict)
    network_digest: str = ""
    label: int = 0
    metadata: dict = field(default_factory=dict)
    created_unix: float = 0.0

    def to_outcome(self):
        """Reconstruct a verification outcome from the record.

        The stats carry the recorded run's work counters but zero
        ``time_seconds`` — a cache hit spends no verification time.
        """
        stats = VerificationStats(
            pgd_calls=int(self.stats.get("pgd_calls", 0)),
            analyze_calls=int(self.stats.get("analyze_calls", 0)),
            splits=int(self.stats.get("splits", 0)),
            max_depth_reached=int(self.stats.get("max_depth_reached", 0)),
        )
        for name, count in self.stats.get("domains_used", {}).items():
            stats.domains_used[name] = int(count)
        if self.kind == "verified":
            return Verified(stats)
        if self.kind == "falsified":
            return Falsified(
                np.asarray(self.counterexample, dtype=np.float64),
                float(self.margin),
                stats,
            )
        raise ValueError(f"cannot reconstruct outcome of kind {self.kind!r}")

    @staticmethod
    def from_outcome(
        outcome, net_digest: str, label: int, metadata: dict | None = None
    ) -> "CacheRecord":
        """Build a record from a decided outcome.

        Raises ``ValueError`` for timeouts — budget artifacts are not
        cacheable results.
        """
        if isinstance(outcome, Timeout) or outcome.kind not in (
            "verified",
            "falsified",
        ):
            raise ValueError(f"cannot cache outcome of kind {outcome.kind!r}")
        stats = {
            "pgd_calls": outcome.stats.pgd_calls,
            "analyze_calls": outcome.stats.analyze_calls,
            "splits": outcome.stats.splits,
            "max_depth_reached": outcome.stats.max_depth_reached,
            "domains_used": dict(outcome.stats.domains_used),
            "time_seconds": outcome.stats.time_seconds,
        }
        margin = None
        counterexample = None
        if isinstance(outcome, Falsified):
            margin = float(outcome.margin)
            counterexample = [float(v) for v in outcome.counterexample]
        return CacheRecord(
            kind=outcome.kind,
            margin=margin,
            counterexample=counterexample,
            stats=stats,
            network_digest=net_digest,
            label=label,
            metadata=dict(metadata or {}),
            created_unix=time.time(),
        )


class ResultCache:
    """A directory of content-addressed :class:`CacheRecord` files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> CacheRecord | None:
        """The record stored under ``key``, or ``None`` (including on any
        unreadable/corrupt file — a broken entry is a miss, never an
        error)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            return CacheRecord(**payload)
        except (OSError, ValueError, TypeError):
            return None

    def put(self, key: str, record: CacheRecord) -> None:
        """Store ``record`` under ``key`` atomically (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.__dict__, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def records(self):
        """Iterate over every readable record in the cache."""
        for path in sorted(self.root.glob("*/*.json")):
            try:
                yield CacheRecord(**json.loads(path.read_text()))
            except (OSError, ValueError, TypeError):
                continue

    # ------------------------------------------------------------------
    # Certified-radius queries
    # ------------------------------------------------------------------

    def radius_bounds(
        self, network: Network | str, center: np.ndarray
    ) -> tuple[float, float]:
        """The tightest cached L∞ radius bracket around ``center``.

        Returns ``(certified, falsified)``: the largest ε any cached
        *verified* record proves and the smallest ε any cached *falsified*
        record refutes (``0.0`` / ``inf`` when nothing is known).  Only
        records carrying ``center_digest``/``epsilon`` metadata
        participate; callers must attach that metadata only to jobs whose
        target label is the network's own prediction at the center (the
        CLI's manifest loader enforces this), since a pinned-label job
        answers a different question and would corrupt the bracket.
        """
        net_digest = (
            network if isinstance(network, str) else network_digest(network)
        )
        target = point_digest(np.asarray(center, dtype=np.float64).reshape(-1))
        certified = 0.0
        falsified = float("inf")
        for record in self.records():
            if record.network_digest != net_digest:
                continue
            meta = record.metadata
            if meta.get("center_digest") != target or "epsilon" not in meta:
                continue
            epsilon = float(meta["epsilon"])
            if record.kind == "verified":
                certified = max(certified, epsilon)
            elif record.kind == "falsified":
                falsified = min(falsified, epsilon)
        return certified, falsified
