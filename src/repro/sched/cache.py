"""Persistent, content-addressed verification result cache.

Every decided job (verified or falsified) is recorded under a sha256 key of
``(network digest, property digest, config digest, policy digest, seed)``:

- the **network digest** (:func:`repro.nn.serialize.network_digest`) covers
  architecture and every parameter bit, so retraining or editing a network
  can never serve stale results;
- the **property digest** covers the region's float64 bit patterns and the
  target label;
- the **config digest** covers every outcome-relevant knob — δ, depth cap,
  split fraction, PGD budget, and ``batch_size`` (chunk width changes which
  witness a falsified run reports) — but deliberately *not* the wall-clock
  timeout: a cached Verified/Falsified record is a proof or a concrete
  witness, both valid under any budget.  Wall-clock timeouts are never
  cached for the same reason in reverse — they are budget artifacts, not
  results.  *Deterministic* timeouts (``"split depth"``, ``"degenerate
  region"``) are a different animal: they are pure functions of the keyed
  configuration (the depth cap is in the digest), reproduce bit-for-bit
  under any wall-clock budget, and so cache soundly — which is what lets
  depth-budgeted workloads (the ``work`` training cost model) re-run with
  zero fresh kernel work.

Records live one-per-file under a two-level fan-out directory (like git's
object store), written atomically (temp file + rename) so concurrent
scheduler runs can share a cache directory.

**Prefix records.**  Next to the result records lives a second family:
``<key>.px.npz`` files holding
:class:`~repro.abstract.checkpoint.PrefixBounds` checkpoints — abstract
states at layer boundaries, keyed by (prefix digest, region-batch digest,
domain, backend) via :func:`prefix_key`.  Because prefix digests are
links of the per-layer chain (:func:`repro.nn.serialize.layer_digests`),
checkpoints written while verifying one network are found verbatim when a
fine-tuned successor probes with its own chain —
:meth:`ResultCache.longest_reusable_prefix` is that probe.  Both families
share the LRU budget accounting: :meth:`ResultCache.prune` sees ``.json``
and ``.px.npz`` entries through one mtime-ordered scan, so a burst of
prefix captures ages out stale result records and vice versa, and the
byte budget means what it says for the whole directory.

**Eviction.**  A cache may carry size budgets (``max_entries`` /
``max_bytes``); :meth:`ResultCache.prune` removes records
least-recently-used first until both budgets hold.  Recency is file
mtime at nanosecond resolution (``st_mtime_ns``; second-granularity
``st_mtime`` would let records written within the same second evict in
arbitrary order), with the record path as a stable tiebreak so eviction
order is deterministic even for same-instant writes.  Every
:meth:`ResultCache.get` hit touches its record, so entries that keep
serving results stay resident while stale ones age out.  Budgeted caches
track an in-memory size estimate and prune once a budget is crossed
(down to 7/8 of it, so eviction cost amortizes over many puts); because
several processes may share one cache directory — each only observing
its *own* puts — the estimate is re-scanned from disk every
``estimate_refresh`` puts (and by every prune), bounding how far a
concurrent writer can push the directory past budget.  Unbudgeted caches
never evict (``python -m repro cache prune`` covers one-off
housekeeping).

Beyond exact-key lookups the cache answers **certified-radius queries**:
jobs created from L∞ manifests record ``center_digest`` and ``epsilon``
metadata, and :meth:`ResultCache.radius_bounds` folds every cached record
for a (network, center) pair into the tightest known bracket — the largest
verified radius and the smallest falsified radius.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy
from repro.core.property import RobustnessProperty
from repro.core.results import (
    Falsified,
    Timeout,
    Verified,
    VerificationStats,
)
from repro.nn.network import Network
from repro.nn.serialize import network_digest
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import span as _span

#: Cache observability (``cache.*`` in snapshots).  ``hits``/``misses``
#: count :meth:`ResultCache.get` outcomes (any unreadable record is a
#: miss), ``evictions`` counts pruned records, ``rescans`` counts
#: directory re-scans of the size estimate, and the byte counters track
#: record payloads served and written.
_CACHE_COUNTERS = _metrics_registry().group(
    "cache",
    (
        "hits",
        "misses",
        "puts",
        "evictions",
        "rescans",
        "read_bytes",
        "write_bytes",
        "evicted_bytes",
    ),
)


#: Timeout reasons that are pure functions of the cache key (the depth cap
#: and split-width floor live in the config digest), as opposed to
#: ``"wall clock"``, which depends on the machine and the budget.
DETERMINISTIC_TIMEOUT_REASONS = ("split depth", "degenerate region")


def cacheable(outcome) -> bool:
    """Whether an outcome is a result (cacheable) or a budget artifact."""
    if outcome.kind in ("verified", "falsified"):
        return True
    return (
        outcome.kind == "timeout"
        and outcome.reason in DETERMINISTIC_TIMEOUT_REASONS
    )


def _sha256(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def property_digest(prop: RobustnessProperty) -> str:
    """Content address of a property: region bit patterns plus label."""
    return _sha256(
        np.ascontiguousarray(prop.region.low, dtype=np.float64).tobytes(),
        np.ascontiguousarray(prop.region.high, dtype=np.float64).tobytes(),
        str(prop.label).encode(),
    )


def point_digest(x: np.ndarray) -> str:
    """Content address of a concrete input point (for radius queries)."""
    return _sha256(np.ascontiguousarray(x, dtype=np.float64).tobytes())


def policy_digest(policy: VerificationPolicy) -> str:
    """Content address of a policy's decision function.

    Parameterized policies (anything exposing ``to_vector``) hash their
    exact parameter bits; hand-crafted policies hash their ``describe()``
    string, which encodes every constructor knob.
    """
    to_vector = getattr(policy, "to_vector", None)
    if callable(to_vector):
        vec = np.ascontiguousarray(to_vector(), dtype=np.float64)
        return _sha256(type(policy).__name__.encode(), vec.tobytes())
    return _sha256(type(policy).__name__.encode(), policy.describe().encode())


def config_digest(config: VerifierConfig) -> str:
    """Content address of the outcome-relevant verifier knobs.

    Excludes ``timeout`` (see the module docstring); includes the PGD
    budget and ``batch_size`` because both shape which witness a falsified
    run returns.
    """
    payload = json.dumps(
        {
            "delta": config.delta,
            "max_depth": config.max_depth,
            "min_split_fraction": config.min_split_fraction,
            "batch_size": config.batch_size,
            "pgd": {
                "steps": config.pgd.steps,
                "restarts": config.pgd.restarts,
                "step_fraction": config.pgd.step_fraction,
            },
        },
        sort_keys=True,
    )
    return _sha256(payload.encode())


def job_key(
    net_digest: str,
    prop: RobustnessProperty,
    config: VerifierConfig,
    policy: VerificationPolicy,
    seed: int,
    backend: str = "numpy64",
) -> str:
    """The cache key of one verification job.

    The key identifies the *decision procedure instance* — network,
    property, knobs, policy, seed, array backend.  It deliberately
    carries no engine tag: every scheduler engine implements
    ``BatchedVerifier`` semantics per job (the reproducibility
    contract), so their results are interchangeable and may serve each
    other.  The **backend** is keyed because it changes the decision
    procedure itself — a float32 run takes different splits and may
    decide differently than the float64 reference — so mixed-precision
    runs can never poison (or be served) reference entries.  For
    compatibility with every pre-backend cache, the ``numpy64``
    reference omits the tag and keeps its historical keys.
    """
    parts = [
        net_digest.encode(),
        property_digest(prop).encode(),
        config_digest(config).encode(),
        policy_digest(policy).encode(),
        str(int(seed)).encode(),
    ]
    if backend != "numpy64":
        parts.append(f"backend={backend}".encode())
    return _sha256(*parts)


def prefix_key(
    prefix_digest: str,
    regions_digest: str,
    base: str,
    disjuncts: int,
    backend: str,
) -> str:
    """The cache key of one prefix checkpoint.

    Keys the *abstract state*, which is a pure function of (prefix ops,
    ordered region batch, domain, backend/dtype).  The leading ``prefix``
    part keeps the family disjoint from :func:`job_key` addresses even
    though both share the fan-out directory.  The backend is always
    keyed (no numpy64 legacy omission — there are no pre-existing prefix
    keys to stay warm for), because a float32 checkpoint's bit patterns
    can never seed a float64 resume.
    """
    return _sha256(
        b"prefix",
        prefix_digest.encode(),
        regions_digest.encode(),
        f"{base}:{int(disjuncts)}".encode(),
        backend.encode(),
    )


@dataclass(frozen=True)
class CacheRecord:
    """One decided outcome, with enough context for radius queries.

    Attributes:
        kind: ``"verified"`` or ``"falsified"``.
        margin: the witness margin for falsified records.
        counterexample: the witness point for falsified records.
        stats: the recorded run's counters (pgd/analyze/splits/...).
        network_digest: content address of the analyzed network.
        label: the property's target class.
        metadata: caller-provided job metadata (e.g. ``center_digest`` and
            ``epsilon`` for L∞ jobs).
        created_unix: record creation time (seconds since the epoch).
    """

    kind: str
    margin: float | None = None
    counterexample: list | None = None
    stats: dict = field(default_factory=dict)
    network_digest: str = ""
    label: int = 0
    metadata: dict = field(default_factory=dict)
    created_unix: float = 0.0
    reason: str = ""

    def to_outcome(self):
        """Reconstruct a verification outcome from the record.

        The stats carry the recorded run's work counters but zero
        ``time_seconds`` — a cache hit spends no verification time.
        """
        stats = VerificationStats(
            pgd_calls=int(self.stats.get("pgd_calls", 0)),
            analyze_calls=int(self.stats.get("analyze_calls", 0)),
            splits=int(self.stats.get("splits", 0)),
            max_depth_reached=int(self.stats.get("max_depth_reached", 0)),
        )
        for name, count in self.stats.get("domains_used", {}).items():
            stats.domains_used[name] = int(count)
        if self.kind == "verified":
            return Verified(stats)
        if self.kind == "falsified":
            return Falsified(
                np.asarray(self.counterexample, dtype=np.float64),
                float(self.margin),
                stats,
            )
        if self.kind == "timeout" and self.reason:
            return Timeout(self.reason, stats)
        raise ValueError(f"cannot reconstruct outcome of kind {self.kind!r}")

    @staticmethod
    def from_outcome(
        outcome, net_digest: str, label: int, metadata: dict | None = None
    ) -> "CacheRecord":
        """Build a record from a decided outcome.

        Raises ``ValueError`` for wall-clock timeouts — budget artifacts
        are not cacheable results (deterministic depth-cap timeouts are,
        see :func:`cacheable`).
        """
        if not cacheable(outcome):
            raise ValueError(f"cannot cache outcome of kind {outcome.kind!r}")
        stats = {
            "pgd_calls": outcome.stats.pgd_calls,
            "analyze_calls": outcome.stats.analyze_calls,
            "splits": outcome.stats.splits,
            "max_depth_reached": outcome.stats.max_depth_reached,
            "domains_used": dict(outcome.stats.domains_used),
            "time_seconds": outcome.stats.time_seconds,
        }
        margin = None
        counterexample = None
        if isinstance(outcome, Falsified):
            margin = float(outcome.margin)
            counterexample = [float(v) for v in outcome.counterexample]
        return CacheRecord(
            kind=outcome.kind,
            margin=margin,
            counterexample=counterexample,
            stats=stats,
            network_digest=net_digest,
            label=label,
            metadata=dict(metadata or {}),
            created_unix=time.time(),
            reason=getattr(outcome, "reason", ""),
        )


@dataclass(frozen=True)
class PruneResult:
    """What one :meth:`ResultCache.prune` pass did."""

    removed: int
    freed_bytes: int
    remaining: int
    remaining_bytes: int


class ResultCache:
    """A directory of content-addressed :class:`CacheRecord` files.

    Args:
        root: cache directory (created on demand).
        max_entries: optional record-count budget enforced by
            :meth:`prune` (and opportunistically after every :meth:`put`).
        max_bytes: optional total-size budget, same discipline.
        estimate_refresh: re-scan the directory after this many
            estimate-only puts.  The in-memory size estimate counts only
            *this instance's* puts, so when several processes share a
            cache directory each one's estimate drifts below the true
            size; the periodic scan picks up the other writers' records
            and bounds the overshoot.
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        estimate_refresh: int = 64,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if estimate_refresh < 1:
            raise ValueError(
                f"estimate_refresh must be >= 1, got {estimate_refresh}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.estimate_refresh = estimate_refresh
        # In-memory (entries, bytes) estimate so budgeted puts don't
        # re-scan the directory; initialized lazily, refreshed by every
        # prune and every `estimate_refresh` puts, and only ever used to
        # decide *whether* to prune (a stale estimate from a concurrent
        # writer delays eviction, never corrupts it).
        self._estimate: tuple[int, int] | None = None
        self._puts_since_scan = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> CacheRecord | None:
        """The record stored under ``key``, or ``None`` (including on any
        unreadable/corrupt file — a broken entry is a miss, never an
        error).  A hit refreshes the record's mtime, which is what keeps
        frequently-served entries out of LRU eviction's way."""
        path = self._path(key)
        with _span("cache.probe", cat="cache"):
            try:
                text = path.read_text()
                record = CacheRecord(**json.loads(text))
            except (OSError, ValueError, TypeError):
                _CACHE_COUNTERS["misses"] += 1
                return None
            try:
                os.utime(path)
            except OSError:
                pass  # recency refresh is best-effort
            _CACHE_COUNTERS["hits"] += 1
            _CACHE_COUNTERS["read_bytes"] += len(text)
        return record

    def put(self, key: str, record: CacheRecord) -> None:
        """Store ``record`` under ``key`` atomically (temp file + rename).

        Budgeted caches track an in-memory size estimate and prune once
        it crosses a budget — down to 7/8 of the budget, so a steady
        stream of puts pays the directory scan once per batch of
        evictions instead of once per record."""
        path = self._path(key)
        with _span("cache.put", cat="cache"):
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(record.__dict__, sort_keys=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            _CACHE_COUNTERS["puts"] += 1
            _CACHE_COUNTERS["write_bytes"] += len(payload)
            if self.max_entries is not None or self.max_bytes is not None:
                self._note_put(len(payload))

    # ------------------------------------------------------------------
    # Prefix records (see repro.abstract.checkpoint.PrefixBounds)
    # ------------------------------------------------------------------

    def _prefix_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.px.npz"

    def put_prefix(self, record) -> None:
        """Persist a :class:`~repro.abstract.checkpoint.PrefixBounds`.

        The record's descriptor fields become a JSON ``__meta__`` entry
        and its arrays ride as named ``.npz`` members (float bit patterns
        preserved exactly — the bitwise-resume contract depends on it).
        Atomic temp-file + rename, same as result records, and the same
        budget accounting: a prefix put can trigger mixed-family LRU
        eviction.
        """
        key = prefix_key(
            record.prefix_digest,
            record.regions_digest,
            record.domain[0],
            record.domain[1],
            record.backend,
        )
        path = self._prefix_path(key)
        with _span("cache.put_prefix", cat="cache"):
            path.parent.mkdir(parents=True, exist_ok=True)
            meta = json.dumps(
                {
                    "boundary": record.boundary,
                    "op_count": record.op_count,
                    "prefix_digest": record.prefix_digest,
                    "regions_digest": record.regions_digest,
                    "domain": list(record.domain),
                    "backend": record.backend,
                    "kind": record.kind,
                    "meta": record.meta,
                },
                sort_keys=True,
            )
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npz")
            os.close(fd)
            try:
                np.savez(tmp, __meta__=np.array(meta), **record.arrays)
                size = os.path.getsize(tmp)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            _CACHE_COUNTERS["puts"] += 1
            _CACHE_COUNTERS["write_bytes"] += size
            if self.max_entries is not None or self.max_bytes is not None:
                self._note_put(size)

    def get_prefix(
        self,
        prefix_digest: str,
        regions_digest: str,
        domain,
        backend: str,
    ):
        """The stored checkpoint for this exact (prefix, batch, domain,
        backend), or ``None``.  Unreadable files are misses; hits refresh
        the file's mtime like result-record hits."""
        from repro.abstract.checkpoint import PrefixBounds

        key = prefix_key(
            prefix_digest, regions_digest, domain[0], domain[1], backend
        )
        path = self._prefix_path(key)
        with _span("cache.probe_prefix", cat="cache"):
            try:
                size = path.stat().st_size
                with np.load(path, allow_pickle=False) as archive:
                    meta = json.loads(str(archive["__meta__"]))
                    arrays = {
                        name: archive[name]
                        for name in archive.files
                        if name != "__meta__"
                    }
            except (OSError, ValueError, TypeError, KeyError):
                _CACHE_COUNTERS["misses"] += 1
                return None
            try:
                os.utime(path)
            except OSError:
                pass  # recency refresh is best-effort
            _CACHE_COUNTERS["hits"] += 1
            _CACHE_COUNTERS["read_bytes"] += size
        return PrefixBounds(
            boundary=int(meta["boundary"]),
            op_count=int(meta["op_count"]),
            prefix_digest=meta["prefix_digest"],
            regions_digest=meta["regions_digest"],
            domain=tuple(meta["domain"]),
            backend=meta["backend"],
            kind=meta["kind"],
            meta=meta["meta"],
            arrays=arrays,
        )

    def longest_reusable_prefix(
        self,
        old_net: Network,
        new_net: Network,
        regions,
        domain,
        backend: str = "numpy64",
    ):
        """The deepest stored checkpoint reusable for ``new_net``.

        Probes the checkpoint boundaries of ``new_net`` that fall inside
        its digest-chain overlap with ``old_net``, deepest first, for
        this exact ordered region batch.  Returns ``(common_layers,
        record)`` where ``record`` is ``None`` when nothing resumable is
        stored (including when the chains diverge at layer one).  Note
        the probe keys on *new_net's own chain* — shared prefix layers
        share digest links, so ``old_net`` only bounds the search depth.
        """
        from repro.abstract.checkpoint import (
            checkpoint_boundaries,
            region_batch_digest,
        )
        from repro.nn.serialize import common_prefix_layers, layer_digests

        common = common_prefix_layers(old_net, new_net)
        if common == 0:
            return 0, None
        chain = layer_digests(new_net)
        regions_digest = region_batch_digest(regions)
        for boundary in reversed(checkpoint_boundaries(new_net)):
            if boundary > common:
                continue
            record = self.get_prefix(
                chain[boundary - 1],
                regions_digest,
                (domain.base, domain.disjuncts),
                backend,
            )
            if record is not None:
                return common, record
        return common, None

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    #: Both record families, one glob per family (result records first
    #: purely for readability — eviction order is mtime, not family).
    _FAMILY_GLOBS = ("*/*.json", "*/*.px.npz")

    def _entries(self) -> list[tuple[Path, int, int]]:
        """``(path, mtime_ns, size)`` for every record file still on disk,
        across **both** families (result ``.json`` and prefix
        ``.px.npz``) — the budgets govern the whole directory.

        Nanosecond mtimes keep LRU recency honest on filesystems whose
        ``st_mtime`` floats truncate to whole seconds; sorting callers
        tiebreak on the path so same-instant records evict
        deterministically.
        """
        entries = []
        for pattern in self._FAMILY_GLOBS:
            for path in self.root.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # concurrently evicted by another run
                entries.append((path, stat.st_mtime_ns, stat.st_size))
        return entries

    def _scan_estimate(self) -> None:
        """Refresh the size estimate from disk (sees other writers' puts)."""
        entries = self._entries()
        self._estimate = (len(entries), sum(size for _, _, size in entries))
        self._puts_since_scan = 0
        _CACHE_COUNTERS["rescans"] += 1

    def _note_put(self, payload_bytes: int) -> None:
        """Update the size estimate after a put; prune when over budget.

        Every ``estimate_refresh`` puts the estimate is re-scanned from
        disk instead of incremented: an instance only observes its own
        puts, so on a shared cache directory the increment-only estimate
        drifts below the true size and would delay eviction indefinitely.
        """
        if (
            self._estimate is None
            or self._puts_since_scan >= self.estimate_refresh
        ):
            self._scan_estimate()
        else:
            count, total = self._estimate
            self._estimate = (count + 1, total + payload_bytes)
            self._puts_since_scan += 1
        count, total = self._estimate
        over_entries = self.max_entries is not None and count > self.max_entries
        over_bytes = self.max_bytes is not None and total > self.max_bytes
        if over_entries or over_bytes:
            self.prune(_hysteresis=True)

    def prune(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        _hysteresis: bool = False,
    ) -> PruneResult:
        """Evict least-recently-used records until the budgets hold.

        Explicit arguments override the instance budgets for this pass
        (the ``repro cache prune`` subcommand's one-off mode).  With no
        budget from either source this is a no-op.  Put-triggered prunes
        evict down to 7/8 of each budget so consecutive puts don't
        re-scan the directory every time.  Eviction order is
        least-recently-used by nanosecond mtime with a stable path
        tiebreak, so same-instant records evict deterministically.
        Unlink races are graceful: a record another process already
        removed counts as gone, not as an error.  The pass's full scan
        also resets the in-memory size estimate, so any drift a
        concurrent writer caused is corrected here regardless of the
        periodic re-scan cadence.
        """
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        if _hysteresis:
            if max_entries is not None:
                max_entries = max(1, max_entries * 7 // 8)
            if max_bytes is not None:
                max_bytes = max(1, max_bytes * 7 // 8)
        entries = sorted(
            self._entries(), key=lambda entry: (entry[1], str(entry[0]))
        )
        count = len(entries)
        total = sum(size for _, _, size in entries)
        removed = 0
        freed = 0
        for path, _, size in entries:
            over_entries = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            try:
                path.unlink()
            except OSError:
                continue
            count -= 1
            total -= size
            removed += 1
            freed += size
        self._estimate = (count, total)
        self._puts_since_scan = 0
        _CACHE_COUNTERS["evictions"] += removed
        _CACHE_COUNTERS["evicted_bytes"] += freed
        return PruneResult(
            removed=removed,
            freed_bytes=freed,
            remaining=count,
            remaining_bytes=total,
        )

    def __len__(self) -> int:
        """Record files across both families (what ``max_entries`` caps)."""
        return sum(
            1
            for pattern in self._FAMILY_GLOBS
            for _ in self.root.glob(pattern)
        )

    def family_counts(self) -> tuple[int, int]:
        """``(result_records, prefix_records)`` currently on disk."""
        return (
            sum(1 for _ in self.root.glob("*/*.json")),
            sum(1 for _ in self.root.glob("*/*.px.npz")),
        )

    def records(self):
        """Iterate over every readable record in the cache."""
        for path in sorted(self.root.glob("*/*.json")):
            try:
                yield CacheRecord(**json.loads(path.read_text()))
            except (OSError, ValueError, TypeError):
                continue

    # ------------------------------------------------------------------
    # Certified-radius queries
    # ------------------------------------------------------------------

    def radius_table(
        self, network: Network | str
    ) -> dict[str, tuple[float, float]]:
        """Every cached L∞ radius bracket of one network, in one scan.

        Maps ``center_digest`` to ``(certified, falsified)`` — the
        largest ε any cached *verified* record proves and the smallest ε
        any cached *falsified* record refutes for that center.  One pass
        over the cache serves arbitrarily many centers (the manifest
        ``radius`` command's shape); :meth:`radius_bounds` is the
        single-center convenience wrapper.
        """
        net_digest = (
            network if isinstance(network, str) else network_digest(network)
        )
        table: dict[str, tuple[float, float]] = {}
        for record in self.records():
            if record.network_digest != net_digest:
                continue
            meta = record.metadata
            target = meta.get("center_digest")
            if target is None or "epsilon" not in meta:
                continue
            epsilon = float(meta["epsilon"])
            certified, falsified = table.get(target, (0.0, float("inf")))
            if record.kind == "verified":
                certified = max(certified, epsilon)
            elif record.kind == "falsified":
                falsified = min(falsified, epsilon)
            table[target] = (certified, falsified)
        return table

    def radius_bounds(
        self, network: Network | str, center: np.ndarray
    ) -> tuple[float, float]:
        """The tightest cached L∞ radius bracket around ``center``.

        Returns ``(certified, falsified)`` (``0.0`` / ``inf`` when
        nothing is known).  Only records carrying
        ``center_digest``/``epsilon`` metadata participate; callers must
        attach that metadata only to jobs whose target label is the
        network's own prediction at the center (the CLI's manifest
        loader enforces this), since a pinned-label job answers a
        different question and would corrupt the bracket.
        """
        target = point_digest(np.asarray(center, dtype=np.float64).reshape(-1))
        return self.radius_table(network).get(target, (0.0, float("inf")))
