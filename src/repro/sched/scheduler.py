"""The multi-property verification scheduler: one shared frontier.

``BatchedVerifier`` keeps its GEMM batches full only while a *single*
property's frontier is at least ``batch_size`` wide — which it rarely is
near the root and near the leaves.  The :class:`Scheduler` accepts a whole
manifest of (network, property) jobs and drives them through fused sweeps:
each round, the frontier policy picks which jobs run, every chosen job
contributes exactly the chunk its solo ``BatchedVerifier`` would pop next,
and the union of chunks goes through **one** batched PGD call per
(network, PGD-config) group and **one** batched Analyze call per
(network, domain) group.  Properties disagree on the target class, so the
fused kernels use the per-region-label variants
(:class:`~repro.attack.objective.MultiLabelMarginObjective`,
:func:`~repro.abstract.analyzer.analyze_batch_multi`).

**Reproducibility contract.**  Fusing changes only which rows share a
GEMM, never the per-row semantics: work-item randomness is path-keyed
from each job's own seed, chunk composition and order within a job are
exactly the solo engine's, and each chunk's falsified/refine logic is the
very same code (:func:`~repro.core.verifier.first_falsified` /
:func:`~repro.core.verifier.choose_domains` /
:func:`~repro.core.verifier.refine_unverified`).  A job therefore produces
the same outcome, witness, and statistics under every frontier policy,
every adaptive batch width, and every co-scheduled job mix as a solo
``BatchedVerifier(network, policy, config, rng=seed).verify(prop)`` run,
up to the §4 BLAS round-off caveat (fused batches have different operand
shapes) — pinned exact on the stock numpy build by
``tests/sched/test_scheduler.py``.

**Execution layer.**  Every kernel call a round produces — one fused PGD
call per (network, PGD-config) group, one fused Analyze call per
(network, domain) group — is independent of its sibling groups: different
groups share no arrays (operands are built on the scheduler thread before
submission, results are consumed in deterministic group order after).
The scheduler therefore submits each round's groups through a
:class:`~repro.exec.KernelExecutor`; with a
:class:`~repro.exec.PooledExecutor` they run on different cores, with a
:class:`~repro.exec.ProcessExecutor` they cross into spawn-based worker
processes as picklable descriptors (:mod:`repro.exec.calls` — the GIL-free
path for Python-loop-heavy zonotope/powerset sweeps), and the
reproducibility contract survives untouched because group composition and
within-group row order never change — only *which core* runs a group
(process workers pin BLAS to one thread so even GEMM rounding matches;
DESIGN.md §9).
The ``sequential`` engine pools at the job level instead: each solo
``BatchedVerifier`` run is self-contained, so whole jobs ride the same
executor.

Decided jobs are recorded in an optional persistent
:class:`~repro.sched.cache.ResultCache`; a later run with the same key
serves the recorded outcome without spawning any PGD or Analyze work.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.abstract.analyzer import (
    analyze_batch_checkpointed,
    analyze_batch_multi,
)
from repro.abstract.checkpoint import (
    checkpoint_boundaries,
    region_batch_digest,
    supports_checkpoint,
)
from repro.abstract.netabs import (
    ABSTRACTION_MODES,
    DEFAULT_LEVEL,
    DEFAULT_MAX_ROUNDS,
    abstraction_for,
)
from repro.backend import active as _active_backend
from repro.backend import get as _get_backend
from repro.backend import use_default_backend as _use_default_backend
from repro.attack.objective import MultiLabelMarginObjective
from repro.attack.pgd import pgd_minimize_batch
from repro.core.policy import default_policy
from repro.core.results import (
    Falsified,
    Timeout,
    VerificationStats,
    Verified,
)
from repro.core.verifier import (
    BatchedVerifier,
    WorkItem,
    choose_domains,
    first_falsified,
    minimize_pgd_config,
    refine_unverified,
    root_item,
)
from repro.exec import KernelExecutor, make_executor, validate_executor_spec
from repro.nn.serialize import layer_digests, network_digest
from repro.obs.metrics import registry as metrics_registry
from repro.obs.trace import span
from repro.sched.cache import CacheRecord, ResultCache, cacheable, job_key
from repro.sched.frontier import (
    AdaptiveBatchController,
    FrontierPolicy,
    make_frontier,
)
from repro.sched.job import JobQueue, VerificationJob
from repro.utils.rng import as_generator
from repro.utils.timing import Deadline, Stopwatch

#: ``--engine`` menu of the ``schedule`` command.  ``batched`` fuses
#: cross-property sweeps; ``sequential`` runs each job through a solo
#: :class:`BatchedVerifier` in submission order (the baseline the fused
#: engine is benchmarked against — both are cache-aware).
SCHED_ENGINES = ("batched", "sequential")


def solo_verify(job: VerificationJob):
    """One whole job through a solo :class:`BatchedVerifier`.

    The sequential engine's executor unit: module-level (and pure, given
    the job) so it can ride any executor — including a
    :class:`~repro.exec.ProcessExecutor`, which marshals it through
    :func:`solo_verify_entry`.  Returns ``(outcome, elapsed_seconds)``.
    """
    watch = Stopwatch().start()
    outcome = BatchedVerifier(
        job.network, job.policy, job.config, rng=job.seed
    ).verify(job.prop)
    return outcome, watch.stop()


def solo_verify_entry(payload: dict):
    """Process-worker entry point for a marshalled solo job."""
    from repro.exec.calls import resolve_network

    return solo_verify(
        VerificationJob(
            resolve_network(payload["network"]),
            payload["prop"],
            config=payload["config"],
            policy=payload["policy"],
            seed=payload["seed"],
        )
    )


class _JobState:
    """Mutable per-job scheduling state (the solo engine's locals)."""

    __slots__ = (
        "index", "job", "policy", "config", "pgd_config", "frontier",
        "stats", "deadline", "watch", "outcome", "last_margin", "last_round",
    )

    def __init__(self, index: int, job: VerificationJob) -> None:
        self.index = index
        self.job = job
        self.policy = job.policy or default_policy()
        self.config = job.config
        self.pgd_config = minimize_pgd_config(job.config)
        self.frontier: list[WorkItem] = [
            root_item(job.prop.region, as_generator(job.seed))
        ]
        self.stats = VerificationStats()
        # The wall-clock budget starts when the job is first *scheduled*,
        # not when the run starts: queue wait behind other jobs must not
        # consume a job's own timeout (the solo engine starts its clock at
        # verify(); this is the closest shared-executor analogue).  Time
        # spent in fused kernels between a job's sweeps still counts —
        # under a shared executor the timeout bounds completion latency.
        self.deadline: Deadline | None = None
        self.watch = Stopwatch().start()
        self.outcome = None
        self.last_margin = float("-inf")
        self.last_round = -1

    @property
    def depth(self) -> int:
        """Depth of the frontier top (the DFS policy's sort key)."""
        return self.frontier[-1].depth if self.frontier else 0

    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def pop_chunk(self) -> list[WorkItem]:
        """Exactly the chunk a solo ``BatchedVerifier`` sweep would pop."""
        if self.deadline is None:
            self.deadline = Deadline(self.config.timeout)
        count = min(self.config.batch_size, len(self.frontier))
        return [self.frontier.pop() for _ in range(count)]

    def push_children(self, pairs: list[tuple[WorkItem, WorkItem]]) -> None:
        """Reverse push order keeps the DFS orientation (the first popped
        item's left child ends on top of the frontier)."""
        for left_item, right_item in reversed(pairs):
            self.frontier.append(right_item)
            self.frontier.append(left_item)

    def finish(self, outcome) -> None:
        self.stats.time_seconds = self.watch.stop()
        self.outcome = outcome


@dataclass(frozen=True)
class JobResult:
    """One job's outcome within a scheduler run.

    ``elapsed`` is completion latency — time from run start to the job's
    decision, which overlaps other jobs' kernel time in fused sweeps.
    """

    index: int
    job: VerificationJob
    outcome: object
    cached: bool
    elapsed: float


@dataclass
class ScheduleReport:
    """Everything a scheduler run did, per job and in aggregate.

    ``metrics`` is the run's counter delta from the process-local
    :mod:`repro.obs.metrics` registry (dotted names — ``kernel.pgd_rows``,
    ``cache.hits``, ``fused.calls``, ``phase.pgd_s``...).  Worker-process
    counters are merged in by the executor layer before each future's
    result is consumed, so the delta is complete by the time the report
    exists and a Process run's totals equal a Serial run's.
    """

    results: list[JobResult]
    wall_clock: float = 0.0
    sweeps: int = 0
    swept_items: int = 0
    cache_hits: int = 0
    cache_errors: int = 0
    frontier: str = ""
    engine: str = ""
    executor: str = ""
    workers: int = 1
    final_batch_target: int = 0
    backend: str = "numpy64"
    escalation: bool = False
    escalated: int = 0
    abstraction: str = "off"
    abstraction_level: int = 0
    netabs_accepted: int = 0
    netabs_rounds: int = 0
    incremental: bool = False
    prefix_hits: int = 0
    prefix_layers_skipped: int = 0
    metrics: dict = field(default_factory=dict)

    def outcome_counts(self) -> dict[str, int]:
        """``{"verified": ..., "falsified": ..., "timeout": ...}``."""
        counts = {"verified": 0, "falsified": 0, "timeout": 0}
        for result in self.results:
            counts[result.outcome.kind] += 1
        return counts

    def fresh_calls(self) -> int:
        """PGD + Analyze calls actually executed (cache hits excluded)."""
        return sum(
            r.outcome.stats.pgd_calls + r.outcome.stats.analyze_calls
            for r in self.results
            if not r.cached
        )

    def throughput(self) -> float:
        """Freshly executed work items per second of wall clock."""
        if self.wall_clock <= 0.0:
            return 0.0
        return self.fresh_calls() / self.wall_clock


class Scheduler:
    """Runs a manifest of verification jobs through one shared frontier.

    Args:
        jobs: a :class:`JobQueue`, a list of jobs, or ``None`` (submit
            later via :meth:`submit`).
        frontier: a :class:`FrontierPolicy` or its name
            (``"fifo"`` / ``"dfs"`` / ``"priority"``).
        cache: optional persistent :class:`ResultCache`; decided jobs are
            recorded, and later runs with identical keys are served
            without spawning any verification work.
        controller: adaptive batch-width controller; defaults to probing
            upward from the largest job ``batch_size``.
        engine: ``"batched"`` (fused cross-property sweeps) or
            ``"sequential"`` (solo ``BatchedVerifier`` per job).
        workers: cores for independent kernel groups (batched engine) or
            whole jobs (sequential engine); ``1`` runs everything inline
            on a :class:`~repro.exec.SerialExecutor`.
        executor: a ready :class:`~repro.exec.KernelExecutor` to use
            instead of building one from ``workers`` (the caller keeps
            ownership of its lifecycle).
        executor_kind: build the run's executor as ``"serial"`` /
            ``"pooled"`` / ``"process"`` instead of the workers-based
            default (threads for GEMM-shaped sweeps, processes for the
            Python-heavy zonotope/powerset paths the GIL serializes).
            Mutually exclusive with ``executor``.
        shm_threshold: operand byte size at which process-executor
            kernel calls switch from pickle to shared-memory transport
            (see :mod:`repro.exec.shm`); ``0`` shares every array,
            negative disables the transport, ``None`` defers to
            ``REPRO_SHM_THRESHOLD``/default.  Only meaningful when this
            scheduler builds its own process executor.
        backend: array backend for the run's kernels (``numpy64`` /
            ``numpy32`` / ``torch``); ``None`` inherits the ambient
            active backend (itself seeded from ``REPRO_BACKEND``).
        precision_escalation: run the two-phase mixed-precision mode —
            screen every job on the fast float32 backend, accept
            falsifications immediately (witnesses re-validated by a
            concrete float64 forward pass), accept comfortable
            certifications, and re-run only the near-margin or
            undecided jobs on the float64 reference backend.  ``None``
            defers to ``REPRO_PRECISION_ESCALATION``.
        escalation_margin: PGD-margin comfort threshold for accepting a
            screen-phase certification without escalation; jobs whose
            attack never got within this margin of the decision
            boundary keep their float32 verdict.
        incremental: enable prefix-checkpoint reuse for the batched
            engine's fused Analyze groups.  Each group probes ``cache``
            for the deepest :class:`~repro.abstract.checkpoint.PrefixBounds`
            captured under the network's own digest chain (a fine-tuned
            network shares chain links with its ancestor for every
            unchanged prefix layer, so no "old network" is ever named),
            resumes the analyzer from it — bitwise-identical to a cold
            run — and emits checkpoints at the deeper boundaries for
            future runs.  Requires ``cache``; silently inert for the
            ``sequential`` engine and for domains without checkpoint
            support (powerset, symbolic), which degrade to exactly the
            cold call.
    """

    def __init__(
        self,
        jobs: JobQueue | list[VerificationJob] | None = None,
        frontier: str | FrontierPolicy = "dfs",
        cache: ResultCache | None = None,
        controller: AdaptiveBatchController | None = None,
        engine: str = "batched",
        workers: int = 1,
        executor: KernelExecutor | None = None,
        executor_kind: str | None = None,
        shm_threshold: int | None = None,
        backend: str | None = None,
        precision_escalation: bool | None = None,
        escalation_margin: float = 1e-2,
        abstraction: str = "off",
        abstraction_level: int = DEFAULT_LEVEL,
        netabs_max_rounds: int = DEFAULT_MAX_ROUNDS,
        incremental: bool = False,
    ) -> None:
        if engine not in SCHED_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {SCHED_ENGINES}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if isinstance(jobs, JobQueue):
            self.queue = jobs
        else:
            self.queue = JobQueue(list(jobs) if jobs else None)
        self.policy = make_frontier(frontier)
        self.cache = cache
        self.controller = controller
        self.engine = engine
        self.workers = workers
        self.executor = executor
        self.executor_kind = executor_kind
        self.shm_threshold = shm_threshold
        # Resolve (and validate) the backend eagerly so a bad name or a
        # missing torch fails at construction, not mid-manifest.
        self.backend = (
            _active_backend().name if backend is None else _get_backend(backend).name
        )
        if precision_escalation is None:
            precision_escalation = os.environ.get(
                "REPRO_PRECISION_ESCALATION", ""
            ).lower() not in ("", "0", "false")
        self.precision_escalation = bool(precision_escalation)
        self.escalation_margin = float(escalation_margin)
        if abstraction not in ABSTRACTION_MODES:
            raise ValueError(
                f"unknown abstraction mode {abstraction!r}; "
                f"choose from {ABSTRACTION_MODES}"
            )
        self.abstraction = abstraction
        self.abstraction_level = int(abstraction_level)
        self.netabs_max_rounds = int(netabs_max_rounds)
        self.incremental = bool(incremental)
        # Fail on a bad (executor, workers, kind) combination here, not
        # mid-manifest.
        validate_executor_spec(executor, workers, kind=executor_kind)

    def submit(self, job: VerificationJob) -> int:
        """Queue one more job; returns its index in the report."""
        return self.queue.submit(job)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _job_key(self, job: VerificationJob, backend: str | None = None) -> str:
        # network_digest memoizes on the Network instance itself, so
        # repeated keying of the same network (concrete or abstract) is a
        # dict-free attribute read — no scheduler-side id() table needed.
        return job_key(
            network_digest(job.network),
            job.prop,
            job.config,
            job.policy or default_policy(),
            job.seed,
            backend=self.backend if backend is None else backend,
        )

    def _record(
        self,
        report: ScheduleReport,
        job: VerificationJob,
        outcome,
        backend: str | None = None,
    ) -> None:
        if self.cache is None or not cacheable(outcome):
            return
        record = CacheRecord.from_outcome(
            outcome,
            network_digest(job.network),
            job.prop.label,
            job.metadata,
        )
        put_started = time.perf_counter()
        try:
            self.cache.put(self._job_key(job, backend), record)
        except OSError:
            # The cache is an optimization; a full disk must not turn a
            # decided job into a failure.
            report.cache_errors += 1
        finally:
            metrics_registry().add(
                "phase.cache_s", time.perf_counter() - put_started
            )

    # ------------------------------------------------------------------
    # Incremental re-verification (prefix checkpoints)
    # ------------------------------------------------------------------

    def _submit_checkpointed(
        self,
        executor: KernelExecutor,
        network,
        regions: list,
        labels: list[int],
        domain,
        deadline: Deadline | None,
    ):
        """Probe the prefix cache and submit one checkpointed group.

        The probe walks the group's checkpoint boundaries deepest-first
        under the *current* network's own digest chain: a checkpoint
        captured on the pre-fine-tune network shares the chain link of
        every unchanged prefix layer, so the old network never needs to
        be named.  A miss degrades to the exact cold call; either way
        the suffix run emits checkpoints at the boundaries deeper than
        the resume point for future runs.
        """
        obs = metrics_registry()
        boundaries = checkpoint_boundaries(network)
        resume = None
        with span(
            "prefix.resume", cat="sched",
            rows=len(regions), domain=domain.base,
        ):
            digest = region_batch_digest(regions)
            chain = layer_digests(network)
            backend = _active_backend().name
            for boundary in reversed(boundaries):
                resume = self.cache.get_prefix(
                    chain[boundary - 1], digest,
                    (domain.base, domain.disjuncts), backend,
                )
                if resume is not None:
                    break
        depth = len(network.layers)
        if resume is not None:
            obs.inc("sched.prefix.hits")
            obs.inc("sched.prefix.layers_skipped", resume.boundary)
            obs.inc("sched.prefix.suffix_layers_run", depth - resume.boundary)
        else:
            obs.inc("sched.prefix.misses")
            obs.inc("sched.prefix.suffix_layers_run", depth)
        capture = tuple(
            b for b in boundaries if resume is None or b > resume.boundary
        )
        return executor.submit(
            analyze_batch_checkpointed, network, regions, labels, domain,
            deadline, resume, capture,
        )

    def _store_prefixes(self, captured: list) -> None:
        """Persist a checkpointed group's captured prefixes (best effort)."""
        if not captured:
            return
        obs = metrics_registry()
        put_started = time.perf_counter()
        try:
            for record in captured:
                self.cache.put_prefix(record)
                obs.inc("sched.prefix.puts")
        except OSError:
            # Same policy as result records: the cache is an
            # optimization, a full disk must not fail the run.
            obs.inc("sched.prefix.put_errors")
        finally:
            obs.add("phase.cache_s", time.perf_counter() - put_started)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> ScheduleReport:
        """Drive every queued job to an outcome; returns the report."""
        jobs = self.queue.jobs()
        if not jobs:
            raise ValueError("no jobs submitted")
        watch = Stopwatch().start()
        obs = metrics_registry()
        counters_before = obs.counters_snapshot()
        executor, owned = make_executor(
            self.executor,
            self.workers,
            kind=self.executor_kind,
            shm_threshold=self.shm_threshold,
        )
        report = ScheduleReport(
            results=[None] * len(jobs),
            frontier=self.policy.name,
            engine=self.engine,
            executor=executor.name,
            workers=executor.workers,
            backend=self.backend,
            escalation=self.precision_escalation,
            abstraction=self.abstraction,
            abstraction_level=(
                self.abstraction_level if self.abstraction != "off" else 0
            ),
            incremental=self.incremental,
        )

        try:
            if self.abstraction != "off":
                self._run_netabs(report, jobs, executor)
            else:
                self._dispatch(report, list(enumerate(jobs)), executor)
        finally:
            if owned:
                executor.shutdown(cancel_pending=True)

        report.wall_clock = watch.stop()
        # Everything the run accumulated — worker deltas included, since
        # the executor merges them before result consumption.
        report.metrics = obs.counters_since(counters_before)
        report.prefix_hits = int(report.metrics.get("sched.prefix.hits", 0))
        report.prefix_layers_skipped = int(
            report.metrics.get("sched.prefix.layers_skipped", 0)
        )
        return report

    def _run_phase(
        self,
        report: ScheduleReport,
        indexed: list[tuple[int, VerificationJob]],
        executor: KernelExecutor,
        backend: str,
    ) -> dict[int, float]:
        """Probe the cache and drive ``indexed`` jobs on ``backend``.

        One precision phase: the plain run is a single phase on
        :attr:`backend`; escalation chains a float32 phase and a float64
        phase.  Cache probes and records use the phase backend's keys,
        so a mixed-precision phase can never serve (or poison) reference
        entries.  Returns the batched engine's per-job final PGD margins
        (empty for sequential) — the escalation driver's near-margin
        signal.
        """
        obs = metrics_registry()
        with _use_default_backend(backend):
            pending: list[tuple[int, VerificationJob]] = []
            probe_started = time.perf_counter()
            for index, job in indexed:
                record = (
                    self.cache.get(self._job_key(job, backend))
                    if self.cache
                    else None
                )
                if record is not None:
                    report.cache_hits += 1
                    report.results[index] = JobResult(
                        index, job, record.to_outcome(), cached=True, elapsed=0.0
                    )
                else:
                    pending.append((index, job))
            if self.cache is not None:
                obs.add("phase.cache_s", time.perf_counter() - probe_started)
            if self.engine == "sequential":
                self._run_sequential(report, pending, executor, backend)
                return {}
            return self._run_batched(report, pending, executor, backend)

    def _dispatch(
        self,
        report: ScheduleReport,
        indexed: list[tuple[int, VerificationJob]],
        executor: KernelExecutor,
    ) -> None:
        """One precision pass over ``indexed`` — escalated or plain.

        The netabs pre-pass reuses this for both the abstract rounds and
        the concrete fallback, so abstraction composes with
        mixed-precision escalation for free.
        """
        if self.precision_escalation:
            self._run_escalated(report, indexed, executor)
        else:
            self._run_phase(report, indexed, executor, self.backend)

    def _run_netabs(
        self,
        report: ScheduleReport,
        jobs: list[VerificationJob],
        executor: KernelExecutor,
    ) -> None:
        """The network-abstraction pre-pass (CEGAR over the whole manifest).

        Jobs are grouped by network; each group gets one
        :class:`~repro.abstract.netabs.NetworkAbstraction` built over the
        hull of the group's property regions, so a single abstract
        network (one digest, one cache keyspace) serves every job and
        every retry.  Per round, the surviving jobs run against the
        current abstract network through the ordinary dispatch path:
        VERIFIED outcomes are sound by construction and accepted
        directly; FALSIFIED outcomes are accepted only when the witness
        reproduces on the *concrete* float64 network; everything else is
        spurious or undecided and triggers one refinement round (a
        quarter of the merged groups split) before the retry.  Jobs
        still undecided after
        ``netabs_max_rounds`` (or once refinement bottoms out at
        singletons) re-run on the concrete network, so job-level
        outcomes always match an ``--abstraction off`` run.
        """
        obs = metrics_registry()
        by_net: dict[int, list[tuple[int, VerificationJob]]] = {}
        for index, job in enumerate(jobs):
            by_net.setdefault(id(job.network), []).append((index, job))
        concrete: list[tuple[int, VerificationJob]] = []
        for pairs in by_net.values():
            network = pairs[0][1].network
            abstraction = abstraction_for(
                network,
                self.abstraction,
                self.abstraction_level,
                regions=[job.prop.region for _, job in pairs],
            )
            if abstraction is None:
                # Unsupported architecture or nothing to merge: these
                # jobs never pay an abstract round.
                obs.inc("sched.netabs.unsupported", len(pairs))
                concrete.extend(pairs)
                continue
            survivors = pairs
            rounds = 0
            while survivors:
                abstract = abstraction.build()
                if abstract is network:
                    # Refined all the way down: the "abstract" network IS
                    # the concrete one, so stop paying CEGAR bookkeeping.
                    concrete.extend(survivors)
                    survivors = []
                    break
                substitute = [
                    (
                        index,
                        VerificationJob(
                            abstract,
                            job.prop,
                            config=job.config,
                            policy=job.policy,
                            seed=job.seed,
                            name=job.name,
                            metadata=job.metadata,
                        ),
                    )
                    for index, job in survivors
                ]
                obs.inc("sched.netabs.jobs", len(substitute))
                self._dispatch(report, substitute, executor)
                undecided: list[tuple[int, VerificationJob]] = []
                for index, job in survivors:
                    result = report.results[index]
                    outcome = result.outcome
                    accept = False
                    if outcome.kind == "verified":
                        obs.inc("sched.netabs.verified")
                        accept = True
                    elif outcome.kind == "falsified":
                        if self._witness_holds(job, outcome):
                            obs.inc("sched.netabs.falsified")
                            accept = True
                        else:
                            obs.inc("sched.netabs.spurious")
                    elif outcome.kind == "timeout":
                        # The abstract network is the *cheap* one; a job
                        # that timed out on it will not do better at a
                        # finer (wider) level — send it straight to the
                        # concrete run instead of burning more rounds.
                        obs.inc("sched.netabs.timeout")
                        concrete.append((index, job))
                        obs.inc("sched.netabs.fallback")
                        continue
                    if accept:
                        # Re-point the result at the original job: the
                        # abstract network was an implementation detail.
                        report.results[index] = JobResult(
                            index, job, outcome, result.cached, result.elapsed
                        )
                        report.netabs_accepted += 1
                        obs.observe("sched.netabs.rounds_to_accept", rounds)
                    else:
                        undecided.append((index, job))
                if not undecided:
                    survivors = []
                    break
                if (
                    rounds >= self.netabs_max_rounds
                    or not abstraction.refine_round()
                ):
                    concrete.extend(undecided)
                    obs.inc("sched.netabs.fallback", len(undecided))
                    survivors = []
                    break
                obs.inc("sched.netabs.refinements")
                report.netabs_rounds += 1
                rounds += 1
                survivors = undecided
        if concrete:
            concrete.sort(key=lambda pair: pair[0])
            self._dispatch(report, concrete, executor)

    def _run_escalated(
        self,
        report: ScheduleReport,
        indexed: list[tuple[int, VerificationJob]],
        executor: KernelExecutor,
    ) -> None:
        """Two-phase mixed precision: float32 screen, float64 decide.

        Phase 1 runs every job on the fast screen backend.  Falsified
        verdicts are accepted once their witness reproduces under a
        concrete float64 forward pass (PGD witnesses are concrete
        points, so validation is exact, not abstract).  Certified
        verdicts are sound by the outward-rounding construction, but
        near-margin ones are re-run so job-level outcomes match a pure
        float64 run; the batched engine's final PGD margin is the
        comfort signal (the sequential engine carries no margin, so it
        escalates every non-falsified job).  Phase 2 re-runs the
        escalated jobs on the float64 reference backend, overwriting
        their screen results.
        """
        screen = "numpy32" if self.backend == "numpy64" else self.backend
        margins = self._run_phase(report, indexed, executor, screen)
        escalate: list[tuple[int, VerificationJob]] = []
        for index, job in indexed:
            outcome = report.results[index].outcome
            if outcome.kind == "falsified" and self._witness_holds(
                job, outcome
            ):
                continue
            if (
                outcome.kind == "verified"
                and margins.get(index, float("-inf")) > self.escalation_margin
            ):
                continue
            escalate.append((index, job))
        # Accumulate: the netabs pre-pass dispatches several escalated
        # passes per run (abstract rounds plus the concrete fallback).
        report.escalated += len(escalate)
        metrics_registry().inc("sched.escalated", len(escalate))
        if escalate:
            self._run_phase(report, escalate, executor, "numpy64")

    @staticmethod
    def _witness_holds(job: VerificationJob, outcome) -> bool:
        """Concrete float64 re-validation of a screen counterexample."""
        logits = job.network.forward(
            np.asarray(outcome.counterexample, dtype=np.float64)
        )
        label = job.prop.label
        margin = float(logits[label] - np.delete(logits, label).max())
        return margin <= job.config.delta

    def _run_sequential(
        self,
        report: ScheduleReport,
        pending: list[tuple[int, VerificationJob]],
        executor: KernelExecutor,
        backend: str,
    ) -> None:
        # A solo BatchedVerifier run is entirely self-contained (path-keyed
        # randomness, private frontier, private stats), so whole jobs are
        # the executor's unit here: submit all, gather in submission order.
        futures = [
            (index, job, executor.submit(solo_verify, job))
            for index, job in pending
        ]
        for index, job, future in futures:
            with span("sched.job", cat="sched", index=index, backend=backend):
                outcome, elapsed = future.result()
            self._record(report, job, outcome, backend)
            report.results[index] = JobResult(
                index, job, outcome, cached=False, elapsed=elapsed
            )
            # Same unit as the batched engine's accounting: one swept item
            # per frontier item minimized (every popped item gets exactly
            # one PGD call, whether or not its analysis ran).
            report.swept_items += outcome.stats.pgd_calls

    # ------------------------------------------------------------------
    # Fused engine
    # ------------------------------------------------------------------

    def _run_batched(
        self,
        report: ScheduleReport,
        pending: list[tuple[int, VerificationJob]],
        executor: KernelExecutor,
        backend: str,
    ) -> dict[int, float]:
        states = [_JobState(index, job) for index, job in pending]
        controller = self.controller
        if controller is None and states:
            controller = AdaptiveBatchController(
                start=max(state.config.batch_size for state in states)
            )
        round_no = 0
        active = list(states)
        while active:
            still = []
            for state in active:
                if state.outcome is not None:
                    continue
                if state.expired():
                    state.finish(Timeout("wall clock", state.stats))
                    continue
                still.append(state)
            active = still
            if not active:
                break

            # The frontier policy picks which jobs' next chunks fill the
            # fused sweep up to the controller's current width target.
            plan: list[tuple[_JobState, list[WorkItem]]] = []
            total = 0
            for state in self.policy.order(active):
                if total >= controller.target and plan:
                    break
                chunk = state.pop_chunk()
                state.last_round = round_no
                plan.append((state, chunk))
                total += len(chunk)
            round_no += 1

            metrics_registry().inc("sched.rounds")
            started = time.perf_counter()
            with span(
                "sched.round", cat="sched",
                round=round_no - 1, jobs=len(plan), items=total,
                backend=backend, dtype=_active_backend().dtype.name,
            ):
                self._fused_sweep(plan, executor)
            controller.record(total, time.perf_counter() - started)
            report.sweeps += 1
            report.swept_items += total

            for state, _ in plan:
                if state.outcome is None and not state.frontier:
                    state.finish(Verified(state.stats))

        for state in states:
            outcome = state.outcome
            self._record(report, state.job, outcome, backend)
            report.results[state.index] = JobResult(
                state.index,
                state.job,
                outcome,
                cached=False,
                elapsed=outcome.stats.time_seconds,
            )
        report.final_batch_target = controller.target if controller else 0
        return {state.index: state.last_margin for state in states}

    @staticmethod
    def _group_deadline(states: list[_JobState]) -> Deadline | None:
        """The *latest* deadline of a fused group.

        Fused kernels cannot abort one job without aborting its batch
        mates, so mid-kernel aborts only fire once every participant is
        over budget; individual jobs time out at round boundaries instead.
        """
        deadlines = [state.deadline for state in states]
        if any(d is None or d.limit is None for d in deadlines):
            return None
        return max(deadlines, key=lambda deadline: deadline.remaining)

    def _fused_sweep(
        self,
        plan: list[tuple[_JobState, list[WorkItem]]],
        executor: KernelExecutor,
    ) -> None:
        """One scheduler round: fused Minimize, fused Analyze, refine.

        Mirrors :func:`~repro.core.verifier.batched_sweep` chunk by chunk;
        only the kernel-call grouping spans jobs.  Each stage's groups are
        pairwise independent — their operands (regions, labels, rngs) are
        built here on the scheduler thread before submission, and their
        results are consumed in submission order after — so the executor
        may run them on any cores without touching the reproducibility
        contract (only per-job deadline checks see the wall clock move).
        """
        obs = metrics_registry()

        # --- 1. Fused Minimize per (network, PGD-config) group -----------
        stage_started = time.perf_counter()
        pgd_groups: dict[tuple, list[tuple[_JobState, list[WorkItem]]]] = {}
        for state, chunk in plan:
            key = (id(state.job.network), state.pgd_config)
            pgd_groups.setdefault(key, []).append((state, chunk))

        pgd_submissions: list[tuple] = []
        for group in pgd_groups.values():
            network = group[0][0].job.network
            items = [item for _, chunk in group for item in chunk]
            labels = [
                state.job.prop.label for state, chunk in group for _ in chunk
            ]
            seeds = [item.derive_seeds() for item in items]
            future = executor.submit(
                pgd_minimize_batch,
                MultiLabelMarginObjective(network, labels),
                [item.region for item in items],
                group[0][0].pgd_config,
                [pgd_rng for pgd_rng, _, _ in seeds],
                self._group_deadline([state for state, _ in group]),
            )
            pgd_submissions.append((group, seeds, future))

        # Chunks that survive Minimize: (state, chunk, seeds, x*, f*).
        survivors: list[tuple] = []
        for group, seeds, future in pgd_submissions:
            with span(
                "sched.pgd_group", cat="sched",
                jobs=len(group), rows=len(seeds),
            ):
                x_stars, f_stars = future.result()
                offset = 0
                for state, chunk in group:
                    rows = slice(offset, offset + len(chunk))
                    offset += len(chunk)
                    xs, fs = x_stars[rows], f_stars[rows]
                    state.stats.pgd_calls += len(chunk)
                    state.stats.max_depth_reached = max(
                        state.stats.max_depth_reached,
                        max(item.depth for item in chunk),
                    )
                    state.last_margin = float(fs.min())
                    idx = first_falsified(fs, state.config.delta)
                    if idx is not None:
                        state.finish(
                            Falsified(xs[idx], float(fs[idx]), state.stats)
                        )
                        continue
                    survivors.append((state, chunk, seeds[rows], xs, fs))
        obs.add("phase.pgd_s", time.perf_counter() - stage_started)

        # --- 2. Fused Analyze per (network, domain) group ----------------
        stage_started = time.perf_counter()
        analyze_groups: dict[tuple, list[tuple[_JobState, int, WorkItem]]] = {}
        results_by_state: dict[int, list] = {}
        for state, chunk, seeds, xs, fs in survivors:
            domains = choose_domains(
                state.job.network, state.policy, state.job.prop,
                chunk, xs, fs, state.stats,
            )
            results_by_state[state.index] = [None] * len(chunk)
            for pos, (item, domain) in enumerate(zip(chunk, domains)):
                key = (id(state.job.network), domain)
                analyze_groups.setdefault(key, []).append((state, pos, item))

        analyze_submissions: list[tuple] = []
        for (_, domain), entries in analyze_groups.items():
            network = entries[0][0].job.network
            group_states = list(
                {id(state): state for state, _, _ in entries}.values()
            )
            regions = [item.region for _, _, item in entries]
            labels = [state.job.prop.label for state, _, _ in entries]
            deadline = self._group_deadline(group_states)
            # Incremental mode swaps the fused Analyze kernel for its
            # checkpoint-aware twin (cold behaviour bitwise-identical);
            # unsupported domains keep the plain call.
            checkpointed = (
                self.incremental
                and self.cache is not None
                and supports_checkpoint(domain)
            )
            if checkpointed:
                future = self._submit_checkpointed(
                    executor, network, regions, labels, domain, deadline
                )
            else:
                future = executor.submit(
                    analyze_batch_multi, network, regions, labels, domain,
                    deadline,
                )
            analyze_submissions.append(
                (entries, group_states, future, checkpointed)
            )

        for entries, group_states, future, checkpointed in analyze_submissions:
            with span(
                "sched.analyze_group", cat="sched",
                jobs=len(group_states), rows=len(entries),
            ):
                try:
                    analyses = future.result()
                except TimeoutError:
                    # The group deadline is the latest of its members, so
                    # every member is over budget.  They must retire *now*:
                    # their chunks never completed analysis, so an empty
                    # frontier here means "aborted", not "verified" (the
                    # solo engine maps this TimeoutError the same way).
                    for state in group_states:
                        if state.outcome is None:
                            state.finish(Timeout("wall clock", state.stats))
                    continue
                if checkpointed:
                    analyses, captured = analyses
                    self._store_prefixes(captured)
                for (state, pos, _), analysis in zip(entries, analyses):
                    results_by_state[state.index][pos] = analysis
        obs.add("phase.analyze_s", time.perf_counter() - stage_started)

        # --- 3. Refine per chunk (identical to the solo engine) ----------
        stage_started = time.perf_counter()
        for state, chunk, seeds, xs, fs in survivors:
            if state.outcome is not None:
                continue
            terminal, pairs = refine_unverified(
                state.job.network, state.policy, state.config,
                state.job.prop, chunk, seeds, xs, fs,
                results_by_state[state.index], state.stats,
            )
            if terminal is not None:
                state.finish(Timeout(terminal[1], state.stats))
                continue
            state.push_children(pairs)
        obs.add("phase.split_join_s", time.perf_counter() - stage_started)
