"""Frontier policies and the adaptive batch-size controller.

The scheduler's shared frontier is the union of every active job's
refinement frontier.  A :class:`FrontierPolicy` decides *which jobs'
chunks* enter the next fused sweep; it never reorders the items inside a
job's own frontier.  That invariant is what makes scheduling a pure
performance knob: each job's chunk sequence — and therefore its outcome,
witness, and statistics — is identical under every policy (DESIGN.md §6).

Policies:

- :class:`FifoFrontier` — fair round-robin: the least recently served job
  first (submission order breaks ties).  Uniform progress across jobs.
- :class:`DfsFrontier` — deepest frontier first: drills one job's
  refinement tree down before spreading, the cross-job analogue of the
  batched engine's depth-first orientation.  Minimizes peak frontier size.
- :class:`PriorityFrontier` — hardest first, keyed by the smallest PGD
  margin a job saw in its last sweep: jobs closest to falsification get
  attention first, so falsifiable jobs terminate (and free their slots)
  early.

The :class:`AdaptiveBatchController` picks how many frontier items each
fused sweep should target: it widens the target while measured kernel
throughput (work items per second) keeps scaling with batch width, and
backs off one step when throughput regresses — batched GEMMs gain from
width only until memory bandwidth saturates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class FrontierPolicy(ABC):
    """Orders active jobs for the next fused sweep."""

    #: CLI / manifest identifier.
    name: str = ""

    @abstractmethod
    def order(self, states: list) -> list:
        """Rank job states; earlier entries are scheduled first.

        ``states`` are scheduler-internal job states exposing ``index``
        (submission order), ``last_round`` (when last served), ``depth``
        (frontier-top depth), and ``last_margin`` (smallest PGD margin of
        the last sweep, ``-inf`` before the first sweep).
        """


class FifoFrontier(FrontierPolicy):
    """Least-recently-served job first (round-robin fairness)."""

    name = "fifo"

    def order(self, states: list) -> list:
        return sorted(states, key=lambda s: (s.last_round, s.index))


class DfsFrontier(FrontierPolicy):
    """Deepest frontier top first: finish drilling before spreading."""

    name = "dfs"

    def order(self, states: list) -> list:
        return sorted(states, key=lambda s: (-s.depth, s.index))


class PriorityFrontier(FrontierPolicy):
    """Hardest job first: smallest last-sweep PGD margin wins.

    A small margin means PGD already sits close to a counterexample, so the
    job is likely to falsify (cheap to settle) or to need deep refinement
    (start it early).  Unswept jobs rank hardest of all (``-inf``) so every
    job gets an initial measurement quickly.
    """

    name = "priority"

    def order(self, states: list) -> list:
        return sorted(states, key=lambda s: (s.last_margin, s.index))


#: ``--frontier`` menu: policy name -> constructor.
FRONTIER_POLICIES: dict[str, type[FrontierPolicy]] = {
    policy.name: policy
    for policy in (FifoFrontier, DfsFrontier, PriorityFrontier)
}


def make_frontier(policy: str | FrontierPolicy) -> FrontierPolicy:
    """Normalize a policy name or instance into a :class:`FrontierPolicy`."""
    if isinstance(policy, FrontierPolicy):
        return policy
    if policy not in FRONTIER_POLICIES:
        raise ValueError(
            f"unknown frontier policy {policy!r}; "
            f"choose from {sorted(FRONTIER_POLICIES)}"
        )
    return FRONTIER_POLICIES[policy]()


class AdaptiveBatchController:
    """Widens the fused-sweep item target while throughput keeps scaling.

    Operates like an additive-increase probe with memory: at each plateau
    the controller averages a few sweeps' throughput; if widening improved
    items/second by at least ``min_gain`` it widens again (doubling, capped
    at ``max_target``), otherwise it returns to the previous width and
    stops probing.  Sweeps smaller than the current target (frontier ran
    dry) are ignored — they measure scarcity, not kernel scaling.
    """

    def __init__(
        self,
        start: int = 16,
        max_target: int = 512,
        samples_per_level: int = 2,
        min_gain: float = 1.05,
    ) -> None:
        if start < 1:
            raise ValueError("start must be >= 1")
        if max_target < start:
            raise ValueError("max_target must be >= start")
        if samples_per_level < 1:
            raise ValueError("samples_per_level must be >= 1")
        if min_gain <= 0:
            raise ValueError("min_gain must be positive")
        self.target = start
        self.max_target = max_target
        self.samples_per_level = samples_per_level
        self.min_gain = min_gain
        self._rates: list[float] = []
        self._previous: tuple[int, float] | None = None  # (target, rate)
        self._frozen = False

    def record(self, items: int, seconds: float) -> None:
        """Feed one fused sweep's size and wall-clock into the probe."""
        if self._frozen or seconds <= 0.0 or items < self.target:
            return
        self._rates.append(items / seconds)
        if len(self._rates) < self.samples_per_level:
            return
        rate = sum(self._rates) / len(self._rates)
        self._rates = []
        if self._previous is not None:
            prev_target, prev_rate = self._previous
            if rate < prev_rate * self.min_gain:
                # Widening stopped paying: settle at the previous width.
                self.target = prev_target
                self._frozen = True
                return
        self._previous = (self.target, rate)
        if self.target >= self.max_target:
            self._frozen = True
            return
        self.target = min(self.target * 2, self.max_target)

    @property
    def settled(self) -> bool:
        """True once the controller has stopped probing for a wider batch."""
        return self._frozen


class FixedBatchController(AdaptiveBatchController):
    """A controller that never widens — the ``--no-adapt`` baseline."""

    def __init__(self, target: int) -> None:
        super().__init__(start=target, max_target=target)
        self._frozen = True
