"""Verification jobs: the unit of work the multi-property scheduler runs.

A :class:`VerificationJob` is one ``(network, property)`` pair plus the
knobs a solo :class:`~repro.core.verifier.BatchedVerifier` run would take —
config, policy, and an integer seed.  The seed matters: each job derives
its own ``SeedSequence`` root from it exactly the way the solo engine
does, so a job's refinement tree, witnesses, and statistics are a pure
function of the job itself, never of which other jobs share the scheduler
run or how the frontier interleaves them (the reproducibility contract,
DESIGN.md §6).

:class:`JobQueue` is the ordered intake: manifests and programmatic callers
submit jobs, the :class:`~repro.sched.scheduler.Scheduler` drains them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy
from repro.core.property import RobustnessProperty
from repro.nn.network import Network


@dataclass(frozen=True, eq=False)
class VerificationJob:
    """One (network, property) pair under a config/policy/seed triple.

    Attributes:
        network: the network under analysis.
        prop: the robustness property to decide.
        config: Algorithm-1 knobs; ``config.batch_size`` is the width of
            this job's frontier chunks inside fused sweeps, exactly as it
            would be in a solo ``BatchedVerifier`` run.
        policy: domain/partition policy; ``None`` selects the default.
        seed: root of the job's ``SeedSequence`` tree (the solo engine's
            ``rng`` argument).
        name: identifier used in reports and manifests.
        metadata: free-form caller data carried into cache records — e.g.
            ``{"epsilon": 0.05, "center_digest": ...}`` for L∞ jobs, which
            is what lets the cache answer certified-radius queries later.
    """

    network: Network
    prop: RobustnessProperty
    config: VerifierConfig = field(default_factory=VerifierConfig)
    policy: VerificationPolicy | None = None
    seed: int = 0
    name: str = ""
    metadata: dict = field(default_factory=dict)


class JobQueue:
    """Ordered job intake for the scheduler.

    Submission order is the FIFO frontier policy's notion of "first" and
    the tiebreaker for every other policy, so it is part of the scheduling
    contract (though never of any job's *outcome* — see the module
    docstring).
    """

    def __init__(self, jobs: list[VerificationJob] | None = None) -> None:
        self._jobs: list[VerificationJob] = []
        for job in jobs or []:
            self.submit(job)

    def submit(self, job: VerificationJob) -> int:
        """Append a job; returns its queue index (stable for the report)."""
        if not isinstance(job, VerificationJob):
            raise TypeError(f"expected VerificationJob, got {type(job).__name__}")
        self._jobs.append(job)
        return len(self._jobs) - 1

    def jobs(self) -> list[VerificationJob]:
        """The submitted jobs in submission order."""
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[VerificationJob]:
        return iter(self._jobs)
