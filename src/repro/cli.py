"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify``   — decide one robustness property of a saved network.
- ``schedule`` — run a manifest of many (network, property) jobs through
  the multi-property scheduler (shared frontier, optional result cache).
- ``radius``   — binary-search the certified L∞ radius around a point.
- ``attack``   — run PGD only (fast falsification attempt, no proof).
- ``info``     — print a saved network's architecture summary.

Networks are ``.npz`` archives produced by :func:`repro.nn.save_network`;
points are ``.npy`` arrays or comma-separated values.

Manifests are JSON files of the shape::

    {
      "defaults": {"epsilon": 0.05, "timeout": 10.0},
      "jobs": [
        {"network": "net.npz", "center": "point.npy", "epsilon": 0.1},
        {"network": "net.npz", "center": "0.5,0.5", "label": 1,
         "name": "xor-center"}
      ]
    }

Per-job keys override ``defaults``; ``label`` pins the target class
(otherwise the network's own prediction at ``center`` is used); networks
referenced by several jobs are loaded once.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.attack.pgd import PGDConfig
from repro.attack.search import find_counterexample
from repro.core.config import VerifierConfig
from repro.core.parallel import ParallelVerifier
from repro.core.property import RobustnessProperty, linf_property
from repro.core.radius import certified_radius
from repro.core.verifier import BatchedVerifier, Verifier
from repro.learn.pretrained import pretrained_policy
from repro.nn.serialize import load_network
from repro.sched import (
    FRONTIER_POLICIES,
    ResultCache,
    SCHED_ENGINES,
    Scheduler,
    VerificationJob,
    point_digest,
)

#: ``--engine`` menu: every engine decides the same property with the same
#: soundness/δ-completeness semantics; they differ in execution shape.
ENGINES = {
    "sequential": Verifier,
    "batched": BatchedVerifier,
    "parallel": ParallelVerifier,
}


def _load_point(spec: str, expected_size: int) -> np.ndarray:
    """A point from an ``.npy`` file or an inline comma-separated list."""
    if spec.endswith(".npy"):
        point = np.load(spec).astype(np.float64).reshape(-1)
    else:
        point = np.array([float(v) for v in spec.split(",")], dtype=np.float64)
    if point.size != expected_size:
        raise SystemExit(
            f"point has {point.size} entries, network expects {expected_size}"
        )
    return point


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("network", help="path to a .npz network archive")
    parser.add_argument(
        "--center",
        required=True,
        help="input point: a .npy file or comma-separated values",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.05, help="L-infinity radius"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="budget in seconds"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def cmd_verify(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    prop = linf_property(network, center, args.epsilon)
    config = VerifierConfig(
        timeout=args.timeout, delta=args.delta, batch_size=args.batch_size
    )
    verifier = ENGINES[args.engine](
        network, pretrained_policy(), config, rng=args.seed
    )
    outcome = verifier.verify(prop)
    print(f"result: {outcome.kind}")
    print(f"label under test: {prop.label}")
    stats = outcome.stats
    print(
        f"stats: {stats.pgd_calls} PGD calls, {stats.analyze_calls} analyses, "
        f"{stats.splits} splits, {stats.time_seconds:.2f}s"
    )
    if outcome.kind == "falsified":
        print(f"counterexample margin: {outcome.margin:.6f}")
        np.save("counterexample.npy", outcome.counterexample)
        print("counterexample written to counterexample.npy")
        return 1
    return 0 if outcome.kind == "verified" else 2


def _manifest_jobs(args: argparse.Namespace) -> list[VerificationJob]:
    """Build :class:`VerificationJob`s from a JSON manifest file."""
    try:
        with open(args.manifest) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read manifest {args.manifest}: {exc}")
    specs = manifest.get("jobs")
    if not specs:
        raise SystemExit("manifest has no jobs")
    defaults = manifest.get("defaults", {})
    networks: dict[str, object] = {}
    policy = pretrained_policy()
    jobs = []
    for i, spec in enumerate(specs):
        merged = {**defaults, **spec}
        for required in ("network", "center"):
            if required not in merged:
                raise SystemExit(f"job {i} is missing {required!r}")
        path = merged["network"]
        if path not in networks:
            networks[path] = load_network(path)
        network = networks[path]
        center = _load_point(str(merged["center"]), network.input_size)
        epsilon = float(merged.get("epsilon", 0.05))
        name = str(merged.get("name", f"job-{i}"))
        # Radius-query metadata is only attached when the target label is
        # the network's own prediction at the center — the semantics a
        # certified-radius bracket assumes.  A pinned label asks a
        # different question, so such records must not fold into
        # ResultCache.radius_bounds.
        metadata = {}
        if "label" in merged:
            label = int(merged["label"])
            if not 0 <= label < network.output_size:
                raise SystemExit(
                    f"job {name!r}: label {label} out of range for "
                    f"{network.output_size}-class network {path}"
                )
            prop = RobustnessProperty(
                linf_property(network, center, epsilon).region,
                label,
                name=name,
            )
        else:
            prop = linf_property(network, center, epsilon, name=name)
            metadata = {
                "center_digest": point_digest(center),
                "epsilon": epsilon,
            }
        config = VerifierConfig(
            timeout=float(merged.get("timeout", args.timeout)),
            delta=float(merged.get("delta", args.delta)),
            batch_size=int(merged.get("batch_size", args.batch_size)),
        )
        jobs.append(
            VerificationJob(
                network,
                prop,
                config=config,
                policy=policy,
                seed=int(merged.get("seed", args.seed)),
                name=name,
                metadata=metadata,
            )
        )
    return jobs


def cmd_schedule(args: argparse.Namespace) -> int:
    jobs = _manifest_jobs(args)
    cache = ResultCache(args.cache) if args.cache else None
    scheduler = Scheduler(
        jobs, frontier=args.frontier, cache=cache, engine=args.engine
    )
    report = scheduler.run()
    width = max(len(job.name) for job in jobs)
    for result in report.results:
        suffix = "  [cached]" if result.cached else ""
        print(
            f"{result.job.name:<{width}}  {result.outcome.kind:<9} "
            f"{result.elapsed:8.2f}s{suffix}"
        )
    counts = report.outcome_counts()
    print(
        f"jobs: {len(report.results)}  verified: {counts['verified']}  "
        f"falsified: {counts['falsified']}  timeout: {counts['timeout']}"
    )
    print(
        f"engine: {report.engine} ({report.frontier} frontier), "
        f"{report.sweeps} fused sweeps, {report.swept_items} work items, "
        f"{report.wall_clock:.2f}s wall clock"
    )
    if cache is not None:
        print(f"cache: {report.cache_hits} hits")
    # Same convention as ``verify``: 0 only when everything is proven,
    # 1 when any property is falsified, 2 when budgets ran out — so a CI
    # gate never mistakes an all-timeout run for success.
    if counts["falsified"]:
        return 1
    return 2 if counts["timeout"] else 0


def cmd_radius(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    result = certified_radius(
        network,
        center,
        max_radius=args.epsilon,
        config=VerifierConfig(timeout=args.timeout),
        rng=args.seed,
    )
    print(f"certified radius: {result.certified:.5f}")
    falsified = "none found" if result.falsified == float("inf") else f"{result.falsified:.5f}"
    print(f"falsified radius: {falsified}")
    print(f"verifier probes:  {result.probes}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    prop = linf_property(network, center, args.epsilon)
    result = find_counterexample(
        network,
        prop,
        PGDConfig(steps=args.steps, restarts=args.restarts),
        rng=args.seed,
    )
    print(f"best margin found: {result.value:.6f}")
    if result.is_counterexample():
        print(f"counterexample: classified as {network.classify(result.x_star)}")
        np.save("counterexample.npy", result.x_star)
        print("counterexample written to counterexample.npy")
        return 1
    print("no counterexample found (property may still be false)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    print(network.summary())
    print(f"ReLU units: {network.num_relu_units()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Charon-style neural network robustness analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify_parser = sub.add_parser("verify", help="decide a robustness property")
    _add_common(verify_parser)
    verify_parser.add_argument(
        "--delta", type=float, default=1e-6, help="δ-completeness slack"
    )
    verify_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="batched",
        help="execution engine (same semantics, different shape)",
    )
    verify_parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="frontier sub-regions per batched sweep",
    )
    verify_parser.set_defaults(func=cmd_verify)

    schedule_parser = sub.add_parser(
        "schedule",
        help="run a manifest of jobs through the multi-property scheduler",
    )
    schedule_parser.add_argument(
        "manifest", help="path to a JSON job manifest (see module docstring)"
    )
    schedule_parser.add_argument(
        "--engine",
        choices=sorted(SCHED_ENGINES),
        default="batched",
        help="batched = fused cross-property sweeps; sequential = solo "
        "BatchedVerifier per job",
    )
    schedule_parser.add_argument(
        "--frontier",
        choices=sorted(FRONTIER_POLICIES),
        default="dfs",
        help="which jobs' chunks fill each fused sweep",
    )
    schedule_parser.add_argument(
        "--cache",
        default=None,
        help="directory of the persistent result cache (created on demand)",
    )
    schedule_parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-job budget in seconds, counted from the job's first "
        "fused sweep (under the batched engine it bounds completion "
        "latency, since fused kernel time is shared across jobs)",
    )
    schedule_parser.add_argument(
        "--delta", type=float, default=1e-6, help="δ-completeness slack"
    )
    schedule_parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="per-job frontier chunk width inside fused sweeps",
    )
    schedule_parser.add_argument("--seed", type=int, default=0, help="random seed")
    schedule_parser.set_defaults(func=cmd_schedule)

    radius_parser = sub.add_parser("radius", help="certified-radius search")
    _add_common(radius_parser)
    radius_parser.set_defaults(func=cmd_radius)

    attack_parser = sub.add_parser("attack", help="PGD falsification only")
    _add_common(attack_parser)
    attack_parser.add_argument("--steps", type=int, default=100)
    attack_parser.add_argument("--restarts", type=int, default=5)
    attack_parser.set_defaults(func=cmd_attack)

    info_parser = sub.add_parser("info", help="print network architecture")
    info_parser.add_argument("network", help="path to a .npz network archive")
    info_parser.set_defaults(func=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
