"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify``   — decide one robustness property of a saved network.
- ``radius``   — binary-search the certified L∞ radius around a point.
- ``attack``   — run PGD only (fast falsification attempt, no proof).
- ``info``     — print a saved network's architecture summary.

Networks are ``.npz`` archives produced by :func:`repro.nn.save_network`;
points are ``.npy`` arrays or comma-separated values.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.attack.pgd import PGDConfig
from repro.attack.search import find_counterexample
from repro.core.config import VerifierConfig
from repro.core.parallel import ParallelVerifier
from repro.core.property import linf_property
from repro.core.radius import certified_radius
from repro.core.verifier import BatchedVerifier, Verifier
from repro.learn.pretrained import pretrained_policy
from repro.nn.serialize import load_network

#: ``--engine`` menu: every engine decides the same property with the same
#: soundness/δ-completeness semantics; they differ in execution shape.
ENGINES = {
    "sequential": Verifier,
    "batched": BatchedVerifier,
    "parallel": ParallelVerifier,
}


def _load_point(spec: str, expected_size: int) -> np.ndarray:
    """A point from an ``.npy`` file or an inline comma-separated list."""
    if spec.endswith(".npy"):
        point = np.load(spec).astype(np.float64).reshape(-1)
    else:
        point = np.array([float(v) for v in spec.split(",")], dtype=np.float64)
    if point.size != expected_size:
        raise SystemExit(
            f"point has {point.size} entries, network expects {expected_size}"
        )
    return point


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("network", help="path to a .npz network archive")
    parser.add_argument(
        "--center",
        required=True,
        help="input point: a .npy file or comma-separated values",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.05, help="L-infinity radius"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="budget in seconds"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def cmd_verify(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    prop = linf_property(network, center, args.epsilon)
    config = VerifierConfig(
        timeout=args.timeout, delta=args.delta, batch_size=args.batch_size
    )
    verifier = ENGINES[args.engine](
        network, pretrained_policy(), config, rng=args.seed
    )
    outcome = verifier.verify(prop)
    print(f"result: {outcome.kind}")
    print(f"label under test: {prop.label}")
    stats = outcome.stats
    print(
        f"stats: {stats.pgd_calls} PGD calls, {stats.analyze_calls} analyses, "
        f"{stats.splits} splits, {stats.time_seconds:.2f}s"
    )
    if outcome.kind == "falsified":
        print(f"counterexample margin: {outcome.margin:.6f}")
        np.save("counterexample.npy", outcome.counterexample)
        print("counterexample written to counterexample.npy")
        return 1
    return 0 if outcome.kind == "verified" else 2


def cmd_radius(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    result = certified_radius(
        network,
        center,
        max_radius=args.epsilon,
        config=VerifierConfig(timeout=args.timeout),
        rng=args.seed,
    )
    print(f"certified radius: {result.certified:.5f}")
    falsified = "none found" if result.falsified == float("inf") else f"{result.falsified:.5f}"
    print(f"falsified radius: {falsified}")
    print(f"verifier probes:  {result.probes}")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    prop = linf_property(network, center, args.epsilon)
    result = find_counterexample(
        network,
        prop,
        PGDConfig(steps=args.steps, restarts=args.restarts),
        rng=args.seed,
    )
    print(f"best margin found: {result.value:.6f}")
    if result.is_counterexample():
        print(f"counterexample: classified as {network.classify(result.x_star)}")
        np.save("counterexample.npy", result.x_star)
        print("counterexample written to counterexample.npy")
        return 1
    print("no counterexample found (property may still be false)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    print(network.summary())
    print(f"ReLU units: {network.num_relu_units()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Charon-style neural network robustness analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify_parser = sub.add_parser("verify", help="decide a robustness property")
    _add_common(verify_parser)
    verify_parser.add_argument(
        "--delta", type=float, default=1e-6, help="δ-completeness slack"
    )
    verify_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="batched",
        help="execution engine (same semantics, different shape)",
    )
    verify_parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="frontier sub-regions per batched sweep",
    )
    verify_parser.set_defaults(func=cmd_verify)

    radius_parser = sub.add_parser("radius", help="certified-radius search")
    _add_common(radius_parser)
    radius_parser.set_defaults(func=cmd_radius)

    attack_parser = sub.add_parser("attack", help="PGD falsification only")
    _add_common(attack_parser)
    attack_parser.add_argument("--steps", type=int, default=100)
    attack_parser.add_argument("--restarts", type=int, default=5)
    attack_parser.set_defaults(func=cmd_attack)

    info_parser = sub.add_parser("info", help="print network architecture")
    info_parser.add_argument("network", help="path to a .npz network archive")
    info_parser.set_defaults(func=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
