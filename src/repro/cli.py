"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify``   — decide one robustness property of a saved network.
- ``schedule`` — run a manifest of many (network, property) jobs through
  the multi-property scheduler (shared frontier, optional result cache,
  ``--workers`` cores for independent fused kernel groups,
  ``--incremental`` prefix-checkpoint reuse).
- ``diff-verify`` — re-verify a manifest after a network change (e.g. a
  fine-tune), resuming fused Analyze work from the per-layer prefix
  checkpoints a previous ``--incremental`` run recorded; bitwise the
  same outcomes as a cold run.
- ``train``    — learn a verification policy θ on a suite manifest
  (scheduled candidate evaluation, batched BO suggestions); writes a θ
  artifact that ``--policy-file`` deploys anywhere a policy is accepted.
- ``radius``   — binary-search the certified L∞ radius around a point, or
  around every center of a manifest (``.json``), bracketing from cached
  records first so already-decided radii spawn no probe jobs.
- ``cache``    — result-cache housekeeping (``cache prune``).
- ``attack``   — run PGD only (fast falsification attempt, no proof).
- ``info``     — print a saved network's architecture summary.
- ``stats``    — summarize one ``--trace`` dump, or diff two.

``verify`` and ``schedule`` accept ``--abstraction {off,syntactic,semantic}``
(with ``--abstraction-level N``): a CEGAR pre-pass that merges similar
neurons into a smaller strictly-over-approximating network, accepts
abstract VERIFIED outcomes directly and FALSIFIED ones only after a
concrete float64 witness check, and refines (or falls back to the
concrete network) on spurious counterexamples — see
:mod:`repro.abstract.netabs`.

``verify``, ``schedule``, and ``train`` accept ``--trace out.json``:
the run's hierarchical spans (scheduler round → fused group → kernel
call → cache probe) and final metric counters are written as a Chrome
trace-event file, loadable in ``chrome://tracing`` / Perfetto and
summarized by ``repro stats``.

Networks are ``.npz`` archives produced by :func:`repro.nn.save_network`;
points are ``.npy`` arrays or comma-separated values.

Manifests are JSON files of the shape::

    {
      "defaults": {"epsilon": 0.05, "timeout": 10.0},
      "jobs": [
        {"network": "net.npz", "center": "point.npy", "epsilon": 0.1},
        {"network": "net.npz", "center": "0.5,0.5", "label": 1,
         "name": "xor-center", "domain": "zonotope", "disjuncts": 2}
      ]
    }

Per-job keys override ``defaults``; ``label`` pins the target class
(otherwise the network's own prediction at ``center`` is used);
``domain``/``disjuncts`` pin the abstract domain (otherwise the learned
policy chooses per sub-region); networks referenced by several jobs are
loaded once.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.abstract.domains import BASE_DOMAINS, DomainSpec
from repro.abstract.netabs import (
    ABSTRACTION_MODES,
    DEFAULT_LEVEL as NETABS_DEFAULT_LEVEL,
    cegar_verify,
)
from repro.attack.pgd import PGDConfig
from repro.backend import BACKEND_CHOICES, set_active as set_active_backend
from repro.backend import use_backend
from repro.attack.search import find_counterexample
from repro.core.config import VerifierConfig
from repro.core.parallel import ParallelVerifier
from repro.core.policy import BisectionPolicy
from repro.core.property import RobustnessProperty, linf_property
from repro.core.radius import certified_radius
from repro.core.verifier import BatchedVerifier, Verifier
from repro.exec import EXECUTOR_KINDS
from repro.learn import (
    COST_MODELS,
    PolicyTrainer,
    TrainingProblem,
    load_policy,
    pretrained_policy,
)
from repro.nn.serialize import common_prefix_layers, load_network
from repro.obs.metrics import registry as metrics_registry
from repro.obs.stats import (
    diff_dumps,
    load_dump,
    summarize_dump,
    validate_trace,
)
from repro.obs.trace import tracer
from repro.sched import (
    FRONTIER_POLICIES,
    ResultCache,
    SCHED_ENGINES,
    Scheduler,
    VerificationJob,
    point_digest,
)

#: ``--engine`` menu: every engine decides the same property with the same
#: soundness/δ-completeness semantics; they differ in execution shape.
ENGINES = {
    "sequential": Verifier,
    "batched": BatchedVerifier,
    "parallel": ParallelVerifier,
}

#: ``--domain`` menu: ``policy`` lets the learned policy pick per
#: sub-region; any base domain pins a fixed :class:`DomainSpec` (combine
#: with ``--disjuncts`` for bounded powersets).  Every base with a batched
#: kernel — interval, deeppoly, zonotope, and zonotope powersets — runs
#: GEMM-shaped under the batched engines.
DOMAIN_CHOICES = ("policy",) + BASE_DOMAINS


def _resolve_policy(domain: str, disjuncts: int, policy_file: str | None = None):
    """The verification policy a ``--domain`` selection implies.

    ``--policy-file`` points "the learned policy" at a ``repro train``
    artifact instead of the shipped one; it only composes with
    ``--domain policy`` (a pinned domain would ignore the file).
    """
    if domain == "policy":
        if disjuncts != 1:
            raise SystemExit(
                "--disjuncts requires a fixed --domain (the learned policy "
                "chooses its own disjunct budgets)"
            )
        if policy_file is not None:
            try:
                return load_policy(policy_file)
            except ValueError as exc:
                raise SystemExit(str(exc))
        return pretrained_policy()
    if policy_file is not None:
        raise SystemExit(
            "--policy-file conflicts with a pinned --domain "
            "(the artifact's policy chooses its own domains)"
        )
    try:
        return BisectionPolicy(domain=DomainSpec(domain, disjuncts))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _load_point(spec: str, expected_size: int) -> np.ndarray:
    """A point from an ``.npy`` file or an inline comma-separated list."""
    if spec.endswith(".npy"):
        point = np.load(spec).astype(np.float64).reshape(-1)
    else:
        point = np.array([float(v) for v in spec.split(",")], dtype=np.float64)
    if point.size != expected_size:
        raise SystemExit(
            f"point has {point.size} entries, network expects {expected_size}"
        )
    return point


def _add_common(
    parser: argparse.ArgumentParser, center_required: bool = True
) -> None:
    parser.add_argument("network", help="path to a .npz network archive")
    parser.add_argument(
        "--center",
        required=center_required,
        default=None,
        help="input point: a .npy file or comma-separated values",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.05, help="L-infinity radius"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="budget in seconds"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _witness_holds_f64(network, prop, delta: float, x) -> bool:
    """Concrete float64 validation of a float32 screen counterexample."""
    logits = network.forward(np.asarray(x, dtype=np.float64))
    margin = float(logits[prop.label] - np.delete(logits, prop.label).max())
    return margin <= delta


def cmd_verify(args: argparse.Namespace) -> int:
    _apply_kernel_flags(args)
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    prop = linf_property(network, center, args.epsilon)
    config = VerifierConfig(
        timeout=args.timeout, delta=args.delta, batch_size=args.batch_size
    )
    policy = _resolve_policy(args.domain, args.disjuncts, args.policy_file)

    def build(net):
        if args.engine == "parallel":
            return ParallelVerifier(
                net, policy, config, workers=args.workers, rng=args.seed
            )
        return ENGINES[args.engine](net, policy, config, rng=args.seed)

    def run_once(net):
        if args.precision_escalation:
            # Two-phase mixed precision for a single property: screen on
            # the float32 backend, keep a falsification once its witness
            # reproduces under a concrete float64 forward pass, otherwise
            # re-run on the float64 reference (a single job carries no
            # margin comfort signal, so every non-falsified screen
            # verdict escalates).
            with use_backend("numpy32"):
                outcome = build(net).verify(prop)
            if not (
                outcome.kind == "falsified"
                and _witness_holds_f64(
                    net, prop, config.delta, outcome.counterexample
                )
            ):
                outcome = build(net).verify(prop)
            return outcome
        return build(net).verify(prop)

    if args.abstraction != "off":
        cegar = cegar_verify(
            network,
            prop,
            run_once,
            mode=args.abstraction,
            level=args.abstraction_level,
            delta=config.delta,
            seed=args.seed,
        )
        outcome = cegar.outcome
        if cegar.abstracted:
            suffix = ", concrete fallback" if cegar.fallback else ""
            print(
                f"abstraction: {args.abstraction} level "
                f"{args.abstraction_level}, {cegar.rounds} refinement "
                f"rounds{suffix}"
            )
        else:
            print("abstraction: not applicable (ran concrete)")
    else:
        outcome = run_once(network)
    print(f"result: {outcome.kind}")
    print(f"label under test: {prop.label}")
    stats = outcome.stats
    print(
        f"stats: {stats.pgd_calls} PGD calls, {stats.analyze_calls} analyses, "
        f"{stats.splits} splits, {stats.time_seconds:.2f}s"
    )
    if outcome.kind == "falsified":
        print(f"counterexample margin: {outcome.margin:.6f}")
        np.save("counterexample.npy", outcome.counterexample)
        print("counterexample written to counterexample.npy")
        return 1
    return 0 if outcome.kind == "verified" else 2


def _load_manifest(
    path: str, load_networks: bool = True
) -> tuple[list[dict], dict[str, object]]:
    """Parse a JSON manifest into merged per-job specs plus the network
    pool (each referenced archive loaded exactly once).

    ``load_networks=False`` skips the archive loads — for callers that
    re-point every job at their own network (``diff-verify``), where the
    manifest's ``network`` paths may describe a superseded file.
    """
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read manifest {path}: {exc}")
    specs = manifest.get("jobs")
    if not specs:
        raise SystemExit("manifest has no jobs")
    defaults = manifest.get("defaults", {})
    networks: dict[str, object] = {}
    merged_specs = []
    for i, spec in enumerate(specs):
        merged = {**defaults, **spec}
        for required in ("network", "center"):
            if required not in merged:
                raise SystemExit(f"job {i} is missing {required!r}")
        net_path = merged["network"]
        if load_networks and net_path not in networks:
            networks[net_path] = load_network(net_path)
        merged.setdefault("name", f"job-{i}")
        merged_specs.append(merged)
    return merged_specs, networks


def _manifest_jobs(
    args: argparse.Namespace, override_network=None
) -> list[VerificationJob]:
    """Build :class:`VerificationJob`s from a JSON manifest file.

    ``override_network`` re-points every job at one network regardless of
    the manifest's ``network`` entries (the ``diff-verify`` verb: same
    properties, fine-tuned network).
    """
    specs, networks = _load_manifest(
        args.manifest, load_networks=override_network is None
    )
    jobs = []
    for spec in specs:
        merged = spec
        network = override_network or networks[merged["network"]]
        center = _load_point(str(merged["center"]), network.input_size)
        epsilon = float(merged.get("epsilon", 0.05))
        name = str(merged["name"])
        job_domain = str(merged.get("domain", args.domain))
        # A job that pins its own domain opts out of the policy artifact;
        # every "policy" job deploys it.
        policy = _resolve_policy(
            job_domain,
            int(merged.get("disjuncts", args.disjuncts)),
            getattr(args, "policy_file", None) if job_domain == "policy" else None,
        )
        # Radius-query metadata is only attached when the target label is
        # the network's own prediction at the center — the semantics a
        # certified-radius bracket assumes.  A pinned label asks a
        # different question, so such records must not fold into
        # ResultCache.radius_bounds.
        metadata = {}
        if "label" in merged:
            label = int(merged["label"])
            if not 0 <= label < network.output_size:
                raise SystemExit(
                    f"job {name!r}: label {label} out of range for "
                    f"{network.output_size}-class network {merged['network']}"
                )
            prop = RobustnessProperty(
                linf_property(network, center, epsilon).region,
                label,
                name=name,
            )
        else:
            prop = linf_property(network, center, epsilon, name=name)
            metadata = {
                "center_digest": point_digest(center),
                "epsilon": epsilon,
            }
        config = VerifierConfig(
            timeout=float(merged.get("timeout", args.timeout)),
            delta=float(merged.get("delta", args.delta)),
            batch_size=int(merged.get("batch_size", args.batch_size)),
        )
        jobs.append(
            VerificationJob(
                network,
                prop,
                config=config,
                policy=policy,
                seed=int(merged.get("seed", args.seed)),
                name=name,
                metadata=metadata,
            )
        )
    return jobs


def cmd_schedule(args: argparse.Namespace) -> int:
    _apply_kernel_flags(args)
    if args.incremental and not args.cache:
        raise SystemExit(
            "--incremental requires --cache (prefix checkpoints live in "
            "the result cache)"
        )
    jobs = _manifest_jobs(args)
    cache = None
    if args.cache:
        try:
            cache = ResultCache(
                args.cache,
                max_entries=args.cache_max_entries,
                max_bytes=args.cache_max_bytes,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        scheduler = Scheduler(
            jobs,
            frontier=args.frontier,
            cache=cache,
            engine=args.engine,
            workers=args.workers,
            executor_kind=args.executor,
            shm_threshold=args.shm_threshold,
            backend=args.backend,
            precision_escalation=True if args.precision_escalation else None,
            escalation_margin=args.escalation_margin,
            abstraction=args.abstraction,
            abstraction_level=args.abstraction_level,
            incremental=args.incremental,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    report = scheduler.run()
    return _print_schedule_report(report, jobs, cache)


def _print_schedule_report(report, jobs, cache) -> int:
    """Shared ``schedule``/``diff-verify`` report printer + exit code."""
    width = max(len(job.name) for job in jobs)
    for result in report.results:
        suffix = "  [cached]" if result.cached else ""
        print(
            f"{result.job.name:<{width}}  {result.outcome.kind:<9} "
            f"{result.elapsed:8.2f}s{suffix}"
        )
    counts = report.outcome_counts()
    print(
        f"jobs: {len(report.results)}  verified: {counts['verified']}  "
        f"falsified: {counts['falsified']}  timeout: {counts['timeout']}"
    )
    print(
        f"engine: {report.engine} ({report.frontier} frontier, "
        f"{report.executor} executor x{report.workers}), "
        f"{report.sweeps} fused sweeps, {report.swept_items} work items, "
        f"{report.wall_clock:.2f}s wall clock"
    )
    if report.abstraction != "off":
        print(
            f"abstraction: {report.abstraction} level "
            f"{report.abstraction_level}, {report.netabs_accepted}/"
            f"{len(report.results)} jobs accepted abstract, "
            f"{report.netabs_rounds} refinement rounds"
        )
    if report.escalation:
        print(
            f"backend: {report.backend} screen, {report.escalated} jobs "
            "escalated to numpy64"
        )
    elif report.backend != "numpy64":
        print(f"backend: {report.backend}")
    if cache is not None:
        print(f"cache: {report.cache_hits} hits")
    if report.incremental:
        print(
            f"prefix: {report.prefix_hits} hits, "
            f"{report.prefix_layers_skipped} layers skipped"
        )
    # Same convention as ``verify``: 0 only when everything is proven,
    # 1 when any property is falsified, 2 when budgets ran out — so a CI
    # gate never mistakes an all-timeout run for success.
    if counts["falsified"]:
        return 1
    return 2 if counts["timeout"] else 0


def cmd_diff_verify(args: argparse.Namespace) -> int:
    """Incremental re-verification of a manifest after a network change.

    Loads the superseded network only to report how deep the digest
    chains still agree; the run itself needs nothing from it — prefix
    checkpoints recorded under the old network are addressed by chain
    links the new network still shares.
    """
    _apply_kernel_flags(args)
    old_network = load_network(args.old_network)
    new_network = load_network(args.new_network)
    common = common_prefix_layers(old_network, new_network)
    total = len(new_network.layers)
    print(f"common prefix: {common}/{total} layers unchanged")
    jobs = _manifest_jobs(args, override_network=new_network)
    try:
        cache = ResultCache(
            args.cache,
            max_entries=args.cache_max_entries,
            max_bytes=args.cache_max_bytes,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    try:
        scheduler = Scheduler(
            jobs,
            frontier=args.frontier,
            cache=cache,
            engine="batched",
            workers=args.workers,
            executor_kind=args.executor,
            shm_threshold=args.shm_threshold,
            backend=args.backend,
            incremental=True,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    report = scheduler.run()
    return _print_schedule_report(report, jobs, cache)


def _suite_problems(path: str) -> list[TrainingProblem]:
    """Training problems from a manifest file (same shape as ``schedule``).

    Per-job ``domain``/``disjuncts``/``timeout`` keys are ignored: the
    policy is the thing being learned, and the per-problem budget comes
    from the trainer's cost model.
    """
    specs, networks = _load_manifest(path)
    problems = []
    for spec in specs:
        network = networks[spec["network"]]
        center = _load_point(str(spec["center"]), network.input_size)
        epsilon = float(spec.get("epsilon", 0.05))
        name = str(spec["name"])
        if "label" in spec:
            prop = RobustnessProperty(
                linf_property(network, center, epsilon).region,
                int(spec["label"]),
                name=name,
            )
        else:
            prop = linf_property(network, center, epsilon, name=name)
        problems.append(TrainingProblem(network, prop))
    return problems


def cmd_train(args: argparse.Namespace) -> int:
    _apply_kernel_flags(args)
    problems = _suite_problems(args.suite)
    cache = None
    if args.cache:
        try:
            cache = ResultCache(args.cache)
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        trainer = PolicyTrainer(
            problems,
            time_limit=args.time_limit,
            penalty=args.penalty,
            n_initial=args.n_initial,
            base_config=VerifierConfig(max_depth=args.max_depth),
            rng=args.seed,
            candidates=args.candidates,
            workers=args.workers,
            cost_model=args.cost_model,
            cache=cache,
            executor_kind=args.executor,
            rng_seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"training on {len(problems)} problems "
        f"({args.iterations} BO evaluations, q={args.candidates}, "
        f"{args.workers} workers, {args.cost_model} cost) ..."
    )
    try:
        trained = trainer.train(args.iterations, verbose=True)
    finally:
        trainer.close()
    objective = trainer.objective
    default_score = trained.history.observations[0].y
    print(f"default policy score: {default_score:.3f}")
    print(f"best policy score:    {trained.best_score:.3f}")
    print(
        f"evaluations: {objective.evaluations} "
        f"({objective.fresh_calls} fresh kernel calls, "
        f"{objective.cache_hits} cached jobs)"
    )
    out = trained.save(args.out)
    print(f"policy artifact written to {out}")
    print(f"deploy it with: repro verify ... --policy-file {out}")
    return 0


def _safe_bracket(certified: float, falsified: float) -> tuple[float, float]:
    """Sanitize a cached radius bracket before seeding a search.

    Records cached under different δ/seed configurations can legitimately
    disagree (a δ-falsified witness at a radius a stricter run verified);
    an inverted bracket must degrade to a fresh search with a warning,
    never crash the command.
    """
    if falsified <= certified:
        print(
            f"warning: cached records disagree (certified {certified:.5f} "
            f">= falsified {falsified:.5f}; likely mixed δ/seed configs) — "
            "ignoring the cached bracket",
            file=sys.stderr,
        )
        return 0.0, float("inf")
    return certified, falsified


def cmd_radius(args: argparse.Namespace) -> int:
    if args.network.endswith(".json"):
        return _cmd_radius_manifest(args)
    if args.center is None:
        raise SystemExit("--center is required (or pass a .json manifest)")
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    known_certified, known_falsified = 0.0, float("inf")
    if args.cache:
        known_certified, known_falsified = _safe_bracket(
            *ResultCache(args.cache).radius_bounds(network, center)
        )
    result = certified_radius(
        network,
        center,
        max_radius=args.epsilon,
        policy=_resolve_policy(args.domain, args.disjuncts, args.policy_file),
        config=VerifierConfig(timeout=args.timeout),
        rng=args.seed,
        known_certified=known_certified,
        known_falsified=known_falsified,
    )
    if args.cache:
        print(
            f"cached bracket:   [{known_certified:.5f}, "
            f"{_fmt_radius(known_falsified)}]"
        )
    print(f"certified radius: {result.certified:.5f}")
    print(f"falsified radius: {_fmt_radius(result.falsified)}")
    print(f"verifier probes:  {result.probes}")
    return 0


def _fmt_radius(value: float) -> str:
    return "none found" if value == float("inf") else f"{value:.5f}"


def _cmd_radius_manifest(args: argparse.Namespace) -> int:
    """Bracket the certified radius of every manifest center.

    For each (network, center) the persistent cache (``--cache``) is
    folded into a starting bracket via
    :meth:`~repro.sched.ResultCache.radius_bounds` *before* any probe job
    is spawned — centers whose cached records already pin the radius to
    within the tolerance cost zero verifier calls.  Jobs with a pinned
    ``label`` answer a different question than a radius query and are
    skipped.
    """
    if args.center is not None:
        raise SystemExit("--center conflicts with a manifest (.json) input")
    specs, networks = _load_manifest(args.network)
    cache = ResultCache(args.cache) if args.cache else None
    # One cache scan per network serves every center (radius_table);
    # dedup covers fully identical queries only — a different epsilon,
    # timeout, seed, or domain is a different question and still runs.
    tables: dict[str, dict] = {}
    seen: set[tuple] = set()
    total_probes = 0
    width = max(len(str(spec["name"])) for spec in specs)
    for spec in specs:
        name = str(spec["name"])
        if "label" in spec:
            print(f"{name:<{width}}  skipped (pinned label)")
            continue
        network = networks[spec["network"]]
        center = _load_point(str(spec["center"]), network.input_size)
        center_digest = point_digest(center)
        max_radius = float(spec.get("epsilon", args.epsilon))
        timeout = float(spec.get("timeout", args.timeout))
        seed = int(spec.get("seed", args.seed))
        domain = str(spec.get("domain", args.domain))
        disjuncts = int(spec.get("disjuncts", args.disjuncts))
        dedup_key = (
            spec["network"], center_digest, max_radius, timeout, seed,
            domain, disjuncts,
        )
        if dedup_key in seen:
            print(f"{name:<{width}}  skipped (duplicate query)")
            continue
        seen.add(dedup_key)
        known_certified, known_falsified = 0.0, float("inf")
        if cache is not None:
            if spec["network"] not in tables:
                tables[spec["network"]] = cache.radius_table(network)
            known_certified, known_falsified = _safe_bracket(
                *tables[spec["network"]].get(
                    center_digest, (0.0, float("inf"))
                )
            )
        result = certified_radius(
            network,
            center,
            max_radius=max_radius,
            policy=_resolve_policy(
                domain,
                disjuncts,
                args.policy_file if domain == "policy" else None,
            ),
            config=VerifierConfig(timeout=timeout),
            rng=seed,
            known_certified=known_certified,
            known_falsified=known_falsified,
        )
        total_probes += result.probes
        print(
            f"{name:<{width}}  certified {result.certified:.5f}  "
            f"falsified {_fmt_radius(result.falsified):<10}  "
            f"probes {result.probes}"
            + ("  [bracketed]" if known_certified > 0.0
               or known_falsified != float("inf") else "")
        )
    print(f"total probes: {total_probes}")
    return 0


def cmd_cache_prune(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.max_entries is None and args.max_bytes is None:
        raise SystemExit("cache prune needs --max-entries and/or --max-bytes")
    try:
        result = cache.prune(
            max_entries=args.max_entries, max_bytes=args.max_bytes
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"pruned {result.removed} records ({result.freed_bytes} bytes); "
        f"{result.remaining} records ({result.remaining_bytes} bytes) remain"
    )
    results, prefixes = cache.family_counts()
    print(f"families: {results} result records, {prefixes} prefix records")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    center = _load_point(args.center, network.input_size)
    prop = linf_property(network, center, args.epsilon)
    result = find_counterexample(
        network,
        prop,
        PGDConfig(steps=args.steps, restarts=args.restarts),
        rng=args.seed,
    )
    print(f"best margin found: {result.value:.6f}")
    if result.is_counterexample():
        print(f"counterexample: classified as {network.classify(result.x_star)}")
        np.save("counterexample.npy", result.x_star)
        print("counterexample written to counterexample.npy")
        return 1
    print("no counterexample found (property may still be false)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    print(network.summary())
    print(f"ReLU units: {network.num_relu_units()}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarize one ``--trace`` dump, or diff two (baseline vs candidate)."""
    if len(args.dumps) > 2:
        raise SystemExit("stats takes one dump (summary) or two (diff)")
    payloads = []
    for path in args.dumps:
        try:
            payload = load_dump(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read trace dump {path}: {exc}")
        for problem in validate_trace(payload):
            print(f"warning: {path}: {problem}", file=sys.stderr)
        payloads.append(payload)
    if len(payloads) == 1:
        print(summarize_dump(payloads[0], top=args.top))
    else:
        print(diff_dumps(payloads[0], payloads[1], top=args.top))
    return 0


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the run's spans and metric counters as a Chrome "
        "trace-event JSON file (view in chrome://tracing or Perfetto, "
        "summarize with 'repro stats')",
    )


def _finish_trace(path: str) -> None:
    """Flush the enabled tracer plus a full metrics snapshot to ``path``."""
    tracer().write(path, metrics=metrics_registry().snapshot())
    tracer().disable()
    print(f"trace written to {path}")


def _add_executor_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default=None,
        help="where independent kernel calls run: 'serial' (inline), "
        "'pooled' (threads; GEMM-shaped sweeps), 'process' (spawn-based "
        "process pool; pays off on the Python-heavy zonotope/powerset "
        "paths the GIL serializes).  Default: serial when --workers 1, "
        "pooled otherwise",
    )
    parser.add_argument(
        "--shm-threshold",
        type=int,
        default=None,
        metavar="BYTES",
        help="process-executor operand size at which kernel-call arrays "
        "cross the worker boundary via shared memory instead of pickle "
        "(0 shares every array, negative disables the transport; "
        "default from REPRO_SHM_THRESHOLD or 1 MiB)",
    )
    parser.add_argument(
        "--no-compaction",
        action="store_true",
        help="disable generator compaction in the fused zonotope ReLU "
        "kernels (the reference path; results stay ==-comparable to the "
        "compacted default).  Exported to spawn workers via "
        "REPRO_NO_COMPACTION",
    )


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="array backend for the hot kernels: numpy64 (float64, the "
        "bitwise reference), numpy32 (float32 fast path; analyzer bounds "
        "stay sound via outward rounding), torch (CPU/GPU, only when "
        "torch is importable).  Default from REPRO_BACKEND or numpy64",
    )
    parser.add_argument(
        "--precision-escalation",
        action="store_true",
        help="two-phase mixed precision: screen every job on the float32 "
        "backend, accept falsifications after a concrete float64 witness "
        "check, and re-run only near-margin or undecided jobs on the "
        "float64 reference",
    )
    parser.add_argument(
        "--escalation-margin",
        type=float,
        default=1e-2,
        help="PGD-margin comfort threshold below which a screen-phase "
        "certification escalates to float64 (scheduler batched engine)",
    )


def _apply_kernel_flags(args: argparse.Namespace) -> None:
    """Export the kernel knobs before any executor can spawn.

    Every knob must be in the environment before a process pool's first
    worker spawns, so workers inherit the same settings and stay
    comparable with the parent.
    """
    import os

    from repro.abstract.fused import set_compaction

    if getattr(args, "no_compaction", False):
        os.environ["REPRO_NO_COMPACTION"] = "1"
        set_compaction(False)
    if getattr(args, "shm_threshold", None) is not None:
        os.environ["REPRO_SHM_THRESHOLD"] = str(args.shm_threshold)
    backend = getattr(args, "backend", None)
    if backend is not None:
        try:
            set_active_backend(backend)
        except KeyError as exc:
            raise SystemExit(exc.args[0])
        os.environ["REPRO_BACKEND"] = backend
    if getattr(args, "precision_escalation", False):
        os.environ["REPRO_PRECISION_ESCALATION"] = "1"


def _add_abstraction_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--abstraction",
        choices=ABSTRACTION_MODES,
        default="off",
        help="network-abstraction CEGAR pre-pass: merge similar neurons "
        "into a smaller strictly-over-approximating network, verify that "
        "first, and refine or fall back to the concrete network on "
        "spurious counterexamples.  'syntactic' clusters by weight rows, "
        "'semantic' by activation signatures over sampled inputs",
    )
    parser.add_argument(
        "--abstraction-level",
        type=int,
        default=NETABS_DEFAULT_LEVEL,
        metavar="N",
        help="aggressiveness of the merge: each hidden layer keeps "
        "~width/2^N neuron groups (higher = smaller abstract network, "
        f"looser bounds; default {NETABS_DEFAULT_LEVEL})",
    )


def _add_domain_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domain",
        choices=DOMAIN_CHOICES,
        default="policy",
        help="abstract domain: 'policy' lets the learned policy choose "
        "per sub-region; a base name pins it (all batched-kernel domains "
        "run GEMM-shaped under the batched engines)",
    )
    parser.add_argument(
        "--disjuncts",
        type=int,
        default=1,
        help="disjunct budget of the bounded powerset (requires a fixed "
        "--domain; e.g. --domain zonotope --disjuncts 2 is the paper's "
        "(Z, 2))",
    )
    parser.add_argument(
        "--policy-file",
        default=None,
        help="θ artifact from 'repro train': deploy that learned policy "
        "instead of the shipped one (requires --domain policy)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Charon-style neural network robustness analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify_parser = sub.add_parser("verify", help="decide a robustness property")
    _add_common(verify_parser)
    verify_parser.add_argument(
        "--delta", type=float, default=1e-6, help="δ-completeness slack"
    )
    verify_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="batched",
        help="execution engine (same semantics, different shape)",
    )
    verify_parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="frontier sub-regions per batched sweep",
    )
    verify_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads of the parallel engine (ignored by the others)",
    )
    _add_domain_flags(verify_parser)
    _add_abstraction_flags(verify_parser)
    _add_backend_flags(verify_parser)
    _add_trace_flag(verify_parser)
    verify_parser.set_defaults(func=cmd_verify)

    schedule_parser = sub.add_parser(
        "schedule",
        help="run a manifest of jobs through the multi-property scheduler",
    )
    schedule_parser.add_argument(
        "manifest", help="path to a JSON job manifest (see module docstring)"
    )
    schedule_parser.add_argument(
        "--engine",
        choices=sorted(SCHED_ENGINES),
        default="batched",
        help="batched = fused cross-property sweeps; sequential = solo "
        "BatchedVerifier per job",
    )
    schedule_parser.add_argument(
        "--frontier",
        choices=sorted(FRONTIER_POLICIES),
        default="dfs",
        help="which jobs' chunks fill each fused sweep",
    )
    schedule_parser.add_argument(
        "--cache",
        default=None,
        help="directory of the persistent result cache (created on demand)",
    )
    schedule_parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="record-count budget: least-recently-used records are pruned "
        "past it (recency = last served, via file mtime)",
    )
    schedule_parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="total-size budget for the cache directory, same LRU pruning",
    )
    schedule_parser.add_argument(
        "--incremental",
        action="store_true",
        help="prefix-checkpoint reuse (requires --cache): fused Analyze "
        "groups resume from the deepest cached per-layer checkpoint whose "
        "digest-chain link the network still shares — bitwise-identical "
        "to a cold run — and record checkpoints for future runs",
    )
    schedule_parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-job budget in seconds, counted from the job's first "
        "fused sweep (under the batched engine it bounds completion "
        "latency, since fused kernel time is shared across jobs)",
    )
    schedule_parser.add_argument(
        "--delta", type=float, default=1e-6, help="δ-completeness slack"
    )
    schedule_parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="per-job frontier chunk width inside fused sweeps",
    )
    schedule_parser.add_argument("--seed", type=int, default=0, help="random seed")
    schedule_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="cores for independent fused kernel groups (batched engine) "
        "or whole jobs (sequential engine); 1 = serial executor",
    )
    _add_executor_flag(schedule_parser)
    _add_domain_flags(schedule_parser)
    _add_abstraction_flags(schedule_parser)
    _add_backend_flags(schedule_parser)
    _add_trace_flag(schedule_parser)
    schedule_parser.set_defaults(func=cmd_schedule)

    diff_parser = sub.add_parser(
        "diff-verify",
        help="re-verify a manifest after a network change, resuming fused "
        "Analyze work from the prefix checkpoints a previous --incremental "
        "run recorded",
    )
    diff_parser.add_argument(
        "old_network", help="the superseded .npz network archive"
    )
    diff_parser.add_argument(
        "new_network", help="the changed .npz network archive to verify"
    )
    diff_parser.add_argument(
        "manifest", help="path to a JSON job manifest (see module docstring)"
    )
    diff_parser.add_argument(
        "--cache",
        required=True,
        help="persistent cache directory holding the previous run's "
        "prefix checkpoints (created on demand)",
    )
    diff_parser.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="record-count budget (LRU, both record families)",
    )
    diff_parser.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="total-size budget for the cache directory",
    )
    diff_parser.add_argument(
        "--frontier",
        choices=sorted(FRONTIER_POLICIES),
        default="dfs",
        help="which jobs' chunks fill each fused sweep",
    )
    diff_parser.add_argument(
        "--timeout", type=float, default=10.0, help="per-job budget in seconds"
    )
    diff_parser.add_argument(
        "--delta", type=float, default=1e-6, help="δ-completeness slack"
    )
    diff_parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="per-job frontier chunk width inside fused sweeps",
    )
    diff_parser.add_argument("--seed", type=int, default=0, help="random seed")
    diff_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="cores for independent fused kernel groups; 1 = serial",
    )
    _add_executor_flag(diff_parser)
    _add_domain_flags(diff_parser)
    _add_backend_flags(diff_parser)
    _add_trace_flag(diff_parser)
    diff_parser.set_defaults(func=cmd_diff_verify)

    train_parser = sub.add_parser(
        "train",
        help="learn a verification policy on a suite manifest "
        "(scheduled candidate evaluation; writes a --policy-file artifact)",
    )
    train_parser.add_argument(
        "suite", help="path to a JSON suite manifest (same shape as schedule)"
    )
    train_parser.add_argument(
        "--iterations",
        type=int,
        default=20,
        help="Bayesian-optimization evaluations after the default-θ seed",
    )
    train_parser.add_argument(
        "--candidates",
        type=int,
        default=1,
        help="BO batch width q: candidates proposed (constant-liar q-EI) "
        "and evaluated per scheduler run",
    )
    train_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="cores for each evaluation's scheduler run",
    )
    _add_executor_flag(train_parser)
    train_parser.add_argument(
        "--cost-model",
        choices=COST_MODELS,
        default="work",
        help="'work' = deterministic kernel-call cost under the depth-cap "
        "budget (reproducible, cacheable); 'time' = the paper's wall-clock "
        "cost under --time-limit",
    )
    train_parser.add_argument(
        "--time-limit",
        type=float,
        default=2.0,
        help="per-problem budget in seconds (time cost model)",
    )
    train_parser.add_argument(
        "--max-depth",
        type=int,
        default=8,
        help="per-problem refinement depth budget (work cost model)",
    )
    train_parser.add_argument(
        "--penalty",
        type=float,
        default=2.0,
        help="unsolved-problem cost multiplier p",
    )
    train_parser.add_argument(
        "--n-initial",
        type=int,
        default=5,
        help="random BO samples before the GP model takes over",
    )
    train_parser.add_argument(
        "--cache",
        default=None,
        help="persistent result-cache directory: re-evaluated candidates "
        "(and re-runs of this command) spawn no kernel work",
    )
    train_parser.add_argument(
        "--out",
        default="trained_policy.json",
        help="where to write the θ artifact",
    )
    train_parser.add_argument("--seed", type=int, default=0, help="random seed")
    _add_backend_flags(train_parser)
    _add_trace_flag(train_parser)
    train_parser.set_defaults(func=cmd_train)

    radius_parser = sub.add_parser(
        "radius",
        help="certified-radius search (one network, or every center of a "
        ".json manifest — bracketed from cached records first)",
    )
    _add_common(radius_parser, center_required=False)
    radius_parser.add_argument(
        "--cache",
        default=None,
        help="result-cache directory: cached verified/falsified records "
        "seed each search's bracket before any probe job is spawned",
    )
    _add_domain_flags(radius_parser)
    radius_parser.set_defaults(func=cmd_radius)

    cache_parser = sub.add_parser(
        "cache", help="persistent result-cache housekeeping"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    prune_parser = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used records until the budgets hold",
    )
    prune_parser.add_argument("cache_dir", help="cache directory to prune")
    prune_parser.add_argument(
        "--max-entries", type=int, default=None, help="record-count budget"
    )
    prune_parser.add_argument(
        "--max-bytes", type=int, default=None, help="total-size budget"
    )
    prune_parser.set_defaults(func=cmd_cache_prune)

    attack_parser = sub.add_parser("attack", help="PGD falsification only")
    _add_common(attack_parser)
    attack_parser.add_argument("--steps", type=int, default=100)
    attack_parser.add_argument("--restarts", type=int, default=5)
    attack_parser.set_defaults(func=cmd_attack)

    info_parser = sub.add_parser("info", help="print network architecture")
    info_parser.add_argument("network", help="path to a .npz network archive")
    info_parser.set_defaults(func=cmd_info)

    stats_parser = sub.add_parser(
        "stats",
        help="summarize a --trace dump, or diff two (baseline candidate)",
    )
    stats_parser.add_argument(
        "dumps",
        nargs="+",
        help="one trace JSON file to summarize, or two to diff "
        "(baseline first)",
    )
    stats_parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows per section in the summary/diff tables",
    )
    stats_parser.set_defaults(func=cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Tracing brackets the whole command (the tracer must be live before
    # any executor spawns or kernel runs), and the dump is written even
    # when the command exits nonzero — a falsified/timeout run is exactly
    # the one worth inspecting.
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.func(args)
    tracer().enable()
    try:
        return args.func(args)
    finally:
        _finish_trace(trace_path)


if __name__ == "__main__":
    sys.exit(main())
