"""The benchmark runner: tools × problems under a common timeout.

Each tool is wrapped in a :class:`ToolAdapter` that normalizes outcomes to
four kinds — ``verified``, ``falsified``, ``timeout``, ``unknown`` —
matching the four bars of the paper's Figure 6.  ``solved`` means verified
or falsified (how the paper counts).

Multi-property suites have two execution routes: :func:`run_suite` runs
every (tool, problem) pair one at a time — the paper's setup — while
:func:`run_suite_scheduled` routes the whole problem list through the
multi-property scheduler (:mod:`repro.sched`) in one run, fusing kernel
batches across properties; outcomes per problem match the per-problem
``BatchedVerifier`` route by the scheduler's reproducibility contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.ai2 import AI2, AI2_BOUNDED64, AI2_ZONOTOPE
from repro.baselines.reluplex import Reluplex, ReluplexConfig
from repro.baselines.reluval import ReluVal, ReluValConfig
from repro.bench.suites import BenchmarkProblem
from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy
from repro.core.property import RobustnessProperty
from repro.core.verifier import Verifier
from repro.nn.network import Network
from repro.utils.timing import Stopwatch

KINDS = ("verified", "falsified", "timeout", "unknown")


@dataclass(frozen=True)
class BenchRecord:
    """One (tool, benchmark) measurement."""

    kind: str
    time_seconds: float

    @property
    def solved(self) -> bool:
        return self.kind in ("verified", "falsified")


@dataclass(frozen=True)
class ToolAdapter:
    """A named callable ``(network, property) -> BenchRecord``."""

    name: str
    run: Callable[[Network, RobustnessProperty], BenchRecord]


def charon_adapter(
    timeout: float,
    policy: VerificationPolicy | None = None,
    name: str = "Charon",
    rng_seed: int = 0,
) -> ToolAdapter:
    """Our verifier (Algorithm 1) under the shared timeout."""

    def run(network: Network, prop: RobustnessProperty) -> BenchRecord:
        config = VerifierConfig(timeout=timeout)
        outcome = Verifier(network, policy, config, rng=rng_seed).verify(prop)
        return BenchRecord(outcome.kind, outcome.stats.time_seconds)

    return ToolAdapter(name, run)


def ai2_adapter(timeout: float, bounded: bool = True) -> ToolAdapter:
    """AI2 with zonotopes (``bounded=False``) or 64-zonotope powersets."""
    domain = AI2_BOUNDED64 if bounded else AI2_ZONOTOPE
    tool_name = "AI2-Bounded64" if bounded else "AI2-Zonotope"
    ai2 = AI2(domain, timeout=timeout)

    def run(network: Network, prop: RobustnessProperty) -> BenchRecord:
        result = ai2.verify(network, prop)
        return BenchRecord(result.kind, result.time_seconds)

    return ToolAdapter(tool_name, run)


def reluval_adapter(timeout: float, max_depth: int = 200) -> ToolAdapter:
    """ReluVal: symbolic intervals + smear bisection, shared timeout."""
    tool = ReluVal(ReluValConfig(timeout=timeout, max_depth=max_depth))

    def run(network: Network, prop: RobustnessProperty) -> BenchRecord:
        outcome = tool.verify(network, prop)
        return BenchRecord(outcome.kind, outcome.stats.time_seconds)

    return ToolAdapter("ReluVal", run)


def reluplex_adapter(timeout: float, node_limit: int = 20_000) -> ToolAdapter:
    """Reluplex stand-in: LP branch-and-bound, shared timeout."""
    tool = Reluplex(ReluplexConfig(timeout=timeout, node_limit=node_limit))

    def run(network: Network, prop: RobustnessProperty) -> BenchRecord:
        watch = Stopwatch().start()
        try:
            outcome = tool.verify(network, prop)
        except TypeError:
            # Unsupported architecture (max pooling): report as unknown,
            # mirroring how the paper excludes such nets from Figure 14.
            return BenchRecord("unknown", watch.stop())
        return BenchRecord(outcome.kind, outcome.stats.time_seconds)

    return ToolAdapter("Reluplex", run)


@dataclass
class ResultTable:
    """All measurements of one harness run.

    ``records[tool_name]`` aligns index-by-index with ``problems``.
    """

    problems: list[BenchmarkProblem]
    records: dict[str, list[BenchRecord]] = field(default_factory=dict)

    def add(self, tool_name: str, record: BenchRecord) -> None:
        self.records.setdefault(tool_name, []).append(record)

    def tools(self) -> list[str]:
        return list(self.records)

    def of(self, tool_name: str) -> list[BenchRecord]:
        return self.records[tool_name]


def run_suite_scheduled(
    problems: list[BenchmarkProblem],
    networks: dict[str, Network],
    timeout: float,
    policy: VerificationPolicy | None = None,
    frontier: str = "dfs",
    cache=None,
    batch_size: int = 16,
    rng_seed: int = 0,
    tool_name: str = "Charon-sched",
) -> ResultTable:
    """Verify a whole multi-property suite in one scheduler run.

    Builds one :class:`~repro.sched.VerificationJob` per problem (same
    timeout/seed discipline as :func:`charon_adapter`), drives them through
    a shared frontier, and returns a :class:`ResultTable` aligned with
    ``problems`` under ``tool_name``.  Record times are per-job completion
    latencies, which overlap inside fused sweeps — sum the table's wall
    clock from the scheduler report, not from the records, when comparing
    engine throughput.
    """
    from repro.sched import Scheduler, VerificationJob

    if not problems:
        raise ValueError("need at least one problem")
    config = VerifierConfig(timeout=timeout, batch_size=batch_size)
    jobs = [
        VerificationJob(
            networks[problem.network_name],
            problem.prop,
            config=config,
            policy=policy,
            seed=rng_seed,
            name=problem.prop.name,
        )
        for problem in problems
    ]
    report = Scheduler(jobs, frontier=frontier, cache=cache).run()
    table = ResultTable(problems=list(problems))
    for result in report.results:
        table.add(
            tool_name, BenchRecord(result.outcome.kind, result.elapsed)
        )
    return table


def run_suite(
    tools: list[ToolAdapter],
    problems: list[BenchmarkProblem],
    networks: dict[str, Network],
) -> ResultTable:
    """Run every tool on every problem; returns the aligned result table."""
    if not tools:
        raise ValueError("need at least one tool")
    table = ResultTable(problems=list(problems))
    for problem in problems:
        network = networks[problem.network_name]
        for tool in tools:
            record = tool.run(network, problem.prop)
            if record.kind not in KINDS:
                raise ValueError(
                    f"tool {tool.name} returned unknown kind {record.kind!r}"
                )
            table.add(tool.name, record)
    return table
