"""Benchmark suite construction (the paper's §7 workloads, scaled).

The paper's 602 benchmarks cover 7 networks — MNIST/CIFAR MLPs of sizes
3x100, 6x100, 9x100, 9x200 and a LeNet-style conv net — with ~100
brightening-attack properties each.  We keep the architectures and the
attack model and scale widths/resolution per DESIGN.md §5.  ``SuiteScale``
controls the scaling; the defaults keep the full harness laptop-fast.

Networks are trained on first use and memoized per (spec, scale) within the
process, so a bench session trains each network once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.property import RobustnessProperty, brightening_property
from repro.data.synthetic import Dataset, cifar_like, mnist_like
from repro.nn.builders import lenet_conv, mlp
from repro.nn.network import Network
from repro.nn.training import TrainConfig, train_classifier
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class SuiteScale:
    """Scaling knobs mapping the paper's sizes to laptop budgets.

    ``width_factor`` multiplies the paper's layer widths (100 -> 24 at the
    default 0.24); ``image_size`` replaces 28x28/32x32 inputs.
    """

    width_factor: float = 0.24
    image_size: int = 8
    train_samples: int = 1500
    train_epochs: int = 8

    def width(self, paper_width: int) -> int:
        return max(4, int(round(paper_width * self.width_factor)))


#: The paper's seven evaluation networks: name -> (dataset, hidden spec).
#: ``hidden`` is ``(num_layers, paper_width)`` for MLPs or ``"conv"``.
NETWORK_SPECS: dict[str, tuple[str, object]] = {
    "mnist_3x100": ("mnist", (3, 100)),
    "mnist_6x100": ("mnist", (6, 100)),
    "mnist_9x200": ("mnist", (9, 200)),
    "cifar_3x100": ("cifar", (3, 100)),
    "cifar_6x100": ("cifar", (6, 100)),
    "cifar_9x100": ("cifar", (9, 100)),
    "mnist_conv": ("mnist", "conv"),
}


@dataclass(frozen=True)
class BenchmarkNetwork:
    """A trained benchmark network plus the data used to attack it."""

    name: str
    dataset_name: str
    network: Network
    dataset: Dataset
    accuracy: float


@dataclass(frozen=True)
class BenchmarkProblem:
    """One benchmark: a network name plus a robustness property."""

    network_name: str
    prop: RobustnessProperty


_NETWORK_CACHE: dict[tuple, BenchmarkNetwork] = {}


def _load_dataset(dataset_name: str, scale: SuiteScale, seed: int) -> Dataset:
    if dataset_name == "mnist":
        return mnist_like(
            num_samples=scale.train_samples, image_size=scale.image_size, rng=seed
        )
    if dataset_name == "cifar":
        return cifar_like(
            num_samples=scale.train_samples, image_size=scale.image_size, rng=seed
        )
    raise ValueError(f"unknown dataset {dataset_name!r}")


def build_network(
    name: str, scale: SuiteScale | None = None, seed: int = 0
) -> BenchmarkNetwork:
    """Train (or fetch from cache) one of the paper's seven networks."""
    if name not in NETWORK_SPECS:
        raise ValueError(f"unknown network {name!r}; choose from {sorted(NETWORK_SPECS)}")
    scale = scale or SuiteScale()
    key = (name, scale, seed)
    if key in _NETWORK_CACHE:
        return _NETWORK_CACHE[key]

    dataset_name, spec = NETWORK_SPECS[name]
    gen = as_generator(seed)
    dataset = _load_dataset(dataset_name, scale, seed)
    input_size = int(np.prod(dataset.sample_shape))
    if spec == "conv":
        network = lenet_conv(
            input_shape=dataset.sample_shape,
            num_classes=dataset.num_classes,
            rng=gen,
        )
    else:
        layers, paper_width = spec
        hidden = [scale.width(paper_width)] * layers
        network = mlp(input_size, hidden, dataset.num_classes, rng=gen)
    flat_inputs = dataset.inputs.reshape(len(dataset), *dataset.sample_shape)
    train_classifier(
        network,
        flat_inputs if spec == "conv" else flat_inputs.reshape(len(dataset), -1),
        dataset.labels,
        TrainConfig(epochs=scale.train_epochs, batch_size=64, learning_rate=0.01),
        rng=gen,
    )
    preds = network.classify_batch(
        flat_inputs if spec == "conv" else flat_inputs.reshape(len(dataset), -1)
    )
    accuracy = float(np.mean(preds == dataset.labels))
    bench_net = BenchmarkNetwork(name, dataset_name, network, dataset, accuracy)
    _NETWORK_CACHE[key] = bench_net
    return bench_net


def build_problems(
    bench_net: BenchmarkNetwork,
    count: int = 12,
    tau: float = 0.55,
    strengths: tuple[float, ...] = (0.05, 0.15, 0.4, 1.0),
    rng: int | np.random.Generator | None = 13,
) -> list[BenchmarkProblem]:
    """Brightening-attack properties against correctly-classified images.

    ``strengths`` grades how far bright pixels may travel toward 1: the
    paper's attack is ``strength=1.0``; smaller strengths produce the mix of
    verifiable and falsifiable benchmarks the evaluation needs (602
    benchmarks with both outcomes present).
    """
    if count < 1:
        raise ValueError("count must be positive")
    gen = as_generator(rng)
    network = bench_net.network
    flat = bench_net.dataset.inputs.reshape(len(bench_net.dataset), -1)
    labels = bench_net.dataset.labels
    correct = [
        i for i in range(len(labels)) if network.classify(flat[i]) == labels[i]
    ]
    if not correct:
        raise RuntimeError(
            f"network {bench_net.name} classifies nothing correctly; "
            "increase training budget"
        )
    problems: list[BenchmarkProblem] = []
    order = gen.permutation(len(correct))
    idx = 0
    while len(problems) < count and idx < len(order):
        image = flat[correct[order[idx]]]
        idx += 1
        strength = strengths[len(problems) % len(strengths)]
        try:
            prop = brightening_property(
                network,
                image,
                tau=tau,
                strength=strength,
                name=f"{bench_net.name}-b{len(problems)}",
            )
        except ValueError:
            continue  # no pixel above threshold; try another image
        problems.append(BenchmarkProblem(bench_net.name, prop))
    if len(problems) < count:
        raise RuntimeError(
            f"only found {len(problems)}/{count} usable images above "
            f"brightening threshold {tau}"
        )
    return problems
