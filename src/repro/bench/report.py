"""Report generation: the rows/series behind each figure of §7.

Every helper consumes a :class:`~repro.bench.harness.ResultTable` and emits
plain data (dicts/lists) plus an ASCII rendering, so benches can both assert
on shapes and print paper-style tables.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import KINDS, ResultTable


def summary_percentages(table: ResultTable) -> dict[str, dict[str, float]]:
    """Figure 6's bars: per tool, the percentage of each outcome kind."""
    summary: dict[str, dict[str, float]] = {}
    for tool in table.tools():
        records = table.of(tool)
        total = len(records)
        summary[tool] = {
            kind: 100.0 * sum(r.kind == kind for r in records) / total
            for kind in KINDS
        }
    return summary


def solved_counts(table: ResultTable) -> dict[str, int]:
    """Per tool, how many benchmarks were verified or falsified."""
    return {
        tool: sum(r.solved for r in table.of(tool)) for tool in table.tools()
    }


def cactus_series(table: ResultTable, tool: str) -> list[tuple[int, float]]:
    """Figures 7–13's series: (#solved, cumulative seconds), sorted by time.

    Only solved benchmarks contribute, as in the paper ("results for each
    tool include only those benchmarks that the tool could solve").
    """
    times = sorted(r.time_seconds for r in table.of(tool) if r.solved)
    series: list[tuple[int, float]] = []
    total = 0.0
    for i, t in enumerate(times, start=1):
        total += t
        series.append((i, total))
    return series


def speedup_on_common(
    table: ResultTable, tool_a: str, tool_b: str
) -> float | None:
    """Total-time ratio ``tool_b / tool_a`` on commonly-solved benchmarks.

    The paper reports e.g. "6.15x faster than AI2-Bounded64 among benchmarks
    solved by both tools".  ``None`` when the common set is empty.
    """
    common = [
        (ra.time_seconds, rb.time_seconds)
        for ra, rb in zip(table.of(tool_a), table.of(tool_b))
        if ra.solved and rb.solved
    ]
    if not common:
        return None
    time_a = sum(t for t, _ in common)
    time_b = sum(t for _, t in common)
    if time_a <= 0:
        return None
    return time_b / time_a


def falsification_counts(table: ResultTable) -> dict[str, int]:
    """§7.3's comparison: falsified benchmarks per tool."""
    return {
        tool: sum(r.kind == "falsified" for r in table.of(tool))
        for tool in table.tools()
    }


def solved_superset(table: ResultTable, tool_a: str, tool_b: str) -> bool:
    """True when ``tool_a`` solves a superset of what ``tool_b`` solves."""
    return all(
        ra.solved or not rb.solved
        for ra, rb in zip(table.of(tool_a), table.of(tool_b))
    )


def verified_subset_solved(
    table: ResultTable, reference: str, other: str
) -> tuple[int, int]:
    """Figure 15's measurement: on the benchmarks the reference tool
    *verified*, how many does the other tool solve?

    Returns ``(other_solved, reference_verified)``.
    """
    ref_records = table.of(reference)
    other_records = table.of(other)
    verified_idx = [i for i, r in enumerate(ref_records) if r.kind == "verified"]
    solved = sum(other_records[i].solved for i in verified_idx)
    return solved, len(verified_idx)


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------


def format_summary(table: ResultTable, title: str = "Summary") -> str:
    """Figure-6-style table: one row per tool, one column per outcome."""
    summary = summary_percentages(table)
    lines = [title, f"{'tool':<16} " + " ".join(f"{k:>10}" for k in KINDS)]
    for tool, row in summary.items():
        cells = " ".join(f"{row[k]:>9.1f}%" for k in KINDS)
        lines.append(f"{tool:<16} {cells}")
    return "\n".join(lines)


def format_cactus(table: ResultTable, title: str = "Cactus") -> str:
    """Figures-7-13-style series: cumulative time vs. benchmarks solved."""
    lines = [title]
    for tool in table.tools():
        series = cactus_series(table, tool)
        if series:
            points = " ".join(f"({n},{t:.2f}s)" for n, t in series)
            lines.append(f"{tool:<16} solved={series[-1][0]:>3}  {points}")
        else:
            lines.append(f"{tool:<16} solved=  0")
    return "\n".join(lines)


def format_counts(counts: dict[str, int], title: str) -> str:
    lines = [title]
    for tool, count in counts.items():
        lines.append(f"  {tool:<16} {count}")
    return "\n".join(lines)


def mean_solve_time(table: ResultTable, tool: str) -> float:
    """Average time over solved benchmarks (NaN when none solved)."""
    times = [r.time_seconds for r in table.of(tool) if r.solved]
    return float(np.mean(times)) if times else float("nan")
