"""The pre-fusion stacked-ReLU reference kernel and its bench workload.

Kept verbatim as the path :func:`repro.abstract.fused.stacked_relu` is
measured against (the ``_unfused_bound_expr`` precedent in
``benchmarks/bench_zonotope_batch.py``): the PR-5 round-loop structure —
``_stacked_relu_split`` materializing both branch tensors, then
``_stacked_join`` allocating a dozen more ``(S, k, n)`` temporaries —
with no scratch arena and no generator compaction.  It calls the
*current* shared primitives (:func:`~repro.abstract.fused.gen_sum` stale
sums, the einsum branch-center product inside ``_stacked_relu_split``),
so its results are **bitwise equal** to the fused kernel and every
measured difference is memory traffic: per-round temporaries plus the
full-``k`` passes compaction avoids.

Shared between ``benchmarks/bench_zonotope_batch.py`` (the gating
throughput floor) and ``scripts/sched_baseline.py --fused-bench`` (the
``BENCH_fused.json`` trajectory row) so both measure the same reference.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.fused import gen_sum
from repro.abstract.zonotope_batch import (
    _crossing_order,
    _stacked_join,
    _stacked_radius,
    _stacked_relu_split,
)


def prefused_stacked_relu(centers, gens, errs, skips, radius=None):
    """``stacked_relu`` with the pre-fusion kernel structure (PR 5)."""
    rows = centers.shape[0]
    if radius is None:
        radius = _stacked_radius(gens, errs)
    dead = centers + radius <= 0.0
    for r, skip in enumerate(skips):
        if skip:
            dead[r, list(skip)] = False
    centers = np.where(dead, 0.0, centers)
    gens = np.where(dead[:, None, :], 0.0, gens)
    errs = np.where(dead, 0.0, errs)
    clamped = dead.any(axis=1)
    if clamped.any():
        radius = radius.copy()
        radius[clamped] = _stacked_radius(gens[clamped], errs[clamped])
    low = centers - radius
    high = centers + radius
    orders = [_crossing_order(low[r], high[r]) for r in range(rows)]
    fresh = np.ones(rows, dtype=bool)
    for position in range(max((len(o) for o in orders), default=0)):
        todo = [
            (r, int(orders[r][position]))
            for r in range(rows)
            if position < len(orders[r])
            and int(orders[r][position]) not in skips[r]
        ]
        if not todo:
            continue
        t_rows = np.array([r for r, _ in todo])
        t_dims = np.array([d for _, d in todo])
        rad = np.empty(len(todo))
        cached = fresh[t_rows]
        if cached.any():
            rad[cached] = radius[t_rows[cached], t_dims[cached]]
        stale = ~cached
        if stale.any():
            cols = gens[t_rows[stale], :, t_dims[stale]]
            rad[stale] = (
                gen_sum(np.abs(cols)) + errs[t_rows[stale], t_dims[stale]]
            )
        c = centers[t_rows, t_dims]
        project = c + rad <= 0.0
        split = ~project & (c - rad < 0.0)
        p_rows, p_dims = t_rows[project], t_dims[project]
        if p_rows.size:
            centers[p_rows, p_dims] = 0.0
            gens[p_rows, :, p_dims] = 0.0
            errs[p_rows, p_dims] = 0.0
            fresh[p_rows] = False
        s_rows, s_dims = t_rows[split], t_dims[split]
        if s_rows.size:
            joined = _stacked_join(
                *_stacked_relu_split(centers, gens, errs, s_rows, s_dims)
            )
            centers[s_rows] = joined[0]
            gens[s_rows] = joined[1]
            errs[s_rows] = joined[2]
            fresh[s_rows] = False
    return centers, gens, errs


def promotion_stack(seed: int, rows: int, k: int, n: int, dead_rows: float):
    """A powerset-frontier-shaped stacked-ReLU workload.

    ``dead_rows`` is the fraction of generator rows that are exactly
    zero across the stack — the structure real frontiers carry: error
    promotion of a dimension whose error term is already ``0.0`` (every
    non-crossing dimension after an earlier affine) mints an all-zero
    generator row, and rows whose branch signs disagree everywhere are
    zeroed by joins.  The zero rows cost the pre-fusion kernel full-
    ``k`` passes every round; generator compaction exists to skip them.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 0.6, (rows, n))
    gens = rng.normal(0.0, 0.25, (rows, k, n)) / np.sqrt(k)
    zero_rows = rng.choice(k, int(k * dead_rows), replace=False)
    gens[:, zero_rows, :] = 0.0
    errs = np.abs(rng.normal(0.0, 0.02, (rows, n)))
    skips = [frozenset() for _ in range(rows)]
    return centers, gens, errs, skips
