"""Benchmark harness: suites, tool adapters, and report generation.

Rebuilds the paper's evaluation pipeline (§7): seven networks (MNIST-like
and CIFAR-like MLPs plus a LeNet-style conv net), brightening-attack
properties, a common-timeout runner, and report helpers that emit the same
rows/series as each figure.
"""

from repro.bench.suites import (
    BenchmarkNetwork,
    BenchmarkProblem,
    SuiteScale,
    build_network,
    build_problems,
    NETWORK_SPECS,
)
from repro.bench.harness import (
    BenchRecord,
    ResultTable,
    ToolAdapter,
    charon_adapter,
    ai2_adapter,
    reluval_adapter,
    reluplex_adapter,
    run_suite,
)
from repro.bench.report import (
    cactus_series,
    falsification_counts,
    format_cactus,
    format_summary,
    solved_counts,
    speedup_on_common,
    summary_percentages,
    verified_subset_solved,
)

__all__ = [
    "BenchmarkNetwork",
    "BenchmarkProblem",
    "SuiteScale",
    "build_network",
    "build_problems",
    "NETWORK_SPECS",
    "BenchRecord",
    "ResultTable",
    "ToolAdapter",
    "charon_adapter",
    "ai2_adapter",
    "reluval_adapter",
    "reluplex_adapter",
    "run_suite",
    "summary_percentages",
    "cactus_series",
    "solved_counts",
    "speedup_on_common",
    "falsification_counts",
    "verified_subset_solved",
    "format_summary",
    "format_cactus",
]
