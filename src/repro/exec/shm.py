"""Shared-memory operand transport for process-executor kernel calls.

Pickling a marshalled kernel call copies its operand arrays twice: once
into the pickle byte stream, once out of it in the worker.  For the wide
``(R, n)`` region stacks the fused sweeps ship every round, that double
copy plus the pipe write is the dominant boundary cost — exactly the
memory tax the fused kernels (:mod:`repro.abstract.fused`) strip from
the compute side.  This module moves large operands through
``multiprocessing.shared_memory`` instead:

- **Parent side**, :class:`ShmArena` owns every segment it creates.
  :meth:`ShmArena.wrap_payload` replaces each large-enough ndarray in a
  descriptor payload with a tiny :class:`ShmHandle` (segment name +
  shape + dtype); the array bytes are written into the segment once.
  Segments are refcounted against the call that shipped them: the
  executor releases them when the call's future completes (including
  worker-crash futures — ``BrokenProcessPool`` still completes the
  future), and :meth:`ShmArena.close` unlinks anything still live on
  executor shutdown, with an ``atexit`` backstop for parents that never
  shut their executor down.

- **Worker side**, :func:`resolve_payload` attaches each handle's
  segment, copies the array out (bitwise — the bytes are the bytes),
  closes its mapping, and unregisters the attachment from the
  ``resource_tracker`` (Python < 3.13 auto-registers attached segments
  and would unlink the parent's live segments when the worker exits).

- **Threshold.**  Small arrays still pickle: a shared-memory segment
  costs a file descriptor, a mmap, and an unlink syscall, which loses
  to pickling a few kilobytes.  The cutover is
  ``REPRO_SHM_THRESHOLD`` bytes (CLI ``--shm-threshold``), default
  :data:`DEFAULT_THRESHOLD`; ``0`` shares every array (the setting the
  transport tests and the CI smoke force so tiny workloads exercise the
  shm path), negative disables the transport entirely.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.obs.metrics import registry

#: Below this many bytes, pickle wins over a segment round-trip.
DEFAULT_THRESHOLD = 1 << 20

#: Transport counters (``shm.*`` in snapshots).  The ``segments_*`` /
#: ``shared_bytes`` side increments in the parent (the arena owns every
#: segment); ``worker_attaches`` / ``worker_copied_bytes`` increment in
#: workers and ride back through the descriptor envelopes.
_SHM_COUNTERS = registry().group(
    "shm",
    (
        "segments_created",
        "segments_released",
        "shared_bytes",
        "worker_attaches",
        "worker_copied_bytes",
    ),
)


def threshold_from_env() -> int:
    """The transport threshold, from ``REPRO_SHM_THRESHOLD`` if set."""
    raw = os.environ.get("REPRO_SHM_THRESHOLD", "")
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_THRESHOLD


@dataclass(frozen=True)
class ShmHandle:
    """A shared-memory resident array: segment name, shape, dtype."""

    name: str
    shape: tuple
    dtype: str


class ShmArena:
    """Parent-side registry of the shared-memory segments in flight.

    Owned by a :class:`~repro.exec.executor.ProcessExecutor`.  Every
    segment created here is also unlinked here — workers only ever
    attach — so a crashed worker can never leak a segment: its future
    still completes, the executor still releases, and :meth:`close`
    sweeps whatever remains.
    """

    def __init__(self, threshold: int | None = None) -> None:
        self.threshold = (
            threshold_from_env() if threshold is None else int(threshold)
        )
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()
        atexit.register(self.close)

    @property
    def enabled(self) -> bool:
        return self.threshold >= 0

    def live_segments(self) -> int:
        """Segments created but not yet released (leak-check hook)."""
        with self._lock:
            return len(self._segments)

    def share(self, array: np.ndarray) -> ShmHandle:
        """Copy ``array`` into a fresh segment; the arena owns it."""
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        with self._lock:
            self._segments[segment.name] = segment
        _SHM_COUNTERS["segments_created"] += 1
        _SHM_COUNTERS["shared_bytes"] += array.nbytes
        return ShmHandle(segment.name, tuple(array.shape), array.dtype.str)

    def wrap_payload(self, payload: dict) -> tuple[dict, tuple[str, ...]]:
        """Replace large ndarrays in a descriptor payload with handles.

        Returns the (possibly new) payload plus the names of the
        segments it references, which the caller passes back to
        :meth:`release` once the call's future completes.  Only
        top-level ndarray values are considered — that is where the
        marshallers put their operand stacks.
        """
        if not self.enabled:
            return payload, ()
        names: list[str] = []
        wrapped = None
        for key, value in payload.items():
            if (
                isinstance(value, np.ndarray)
                and value.nbytes >= self.threshold
            ):
                if wrapped is None:
                    wrapped = dict(payload)
                handle = self.share(value)
                wrapped[key] = handle
                names.append(handle.name)
        return (payload if wrapped is None else wrapped), tuple(names)

    def release(self, names) -> None:
        """Unlink the named segments (idempotent per name)."""
        with self._lock:
            segments = [
                self._segments.pop(name)
                for name in names
                if name in self._segments
            ]
        for segment in segments:
            segment.close()
            segment.unlink()
        _SHM_COUNTERS["segments_released"] += len(segments)

    def close(self) -> None:
        """Unlink every live segment (idempotent; atexit backstop)."""
        with self._lock:
            segments, self._segments = list(self._segments.values()), {}
        for segment in segments:
            segment.close()
            segment.unlink()
        _SHM_COUNTERS["segments_released"] += len(segments)
        atexit.unregister(self.close)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without registering ownership.

    Before Python 3.13 (no ``track=False``), attaching a segment
    registers it with the resource tracker as if this process created
    it.  The parent is the owner: with a per-process tracker the bogus
    registration would unlink live segments when the worker exits, and
    with the tracker spawn workers share with their parent, any attempt
    to undo it afterwards (``unregister``) would strip the *parent's*
    registration instead.  Suppressing the registration at attach time
    is the one behavior correct for both.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = register
    except Exception:  # noqa: BLE001 - best-effort on non-POSIX trackers
        original = None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        if original is not None:
            resource_tracker.register = original


def resolve_payload(payload: dict) -> dict:
    """Worker-side: materialize every :class:`ShmHandle` in a payload."""
    resolved = None
    for key, value in payload.items():
        if isinstance(value, ShmHandle):
            if resolved is None:
                resolved = dict(payload)
            segment = _attach(value.name)
            try:
                view = np.ndarray(
                    value.shape, dtype=np.dtype(value.dtype),
                    buffer=segment.buf,
                )
                resolved[key] = view.copy()
                _SHM_COUNTERS["worker_attaches"] += 1
                _SHM_COUNTERS["worker_copied_bytes"] += resolved[key].nbytes
            finally:
                segment.close()
    return payload if resolved is None else resolved
