"""Kernel execution layer: serial, thread-pooled, and process-pooled
execution of independent kernel calls (§6's "different threads"), shared
by the scheduler, the parallel verifier, and scheduled policy training.
Process submissions cross as picklable descriptors (:mod:`repro.exec.calls`)
that ship each network once per worker; large operands ride
``multiprocessing.shared_memory`` segments (:mod:`repro.exec.shm`)."""

from repro.exec.executor import (
    EXECUTOR_KINDS,
    FirstOutcome,
    KernelExecutor,
    PooledExecutor,
    ProcessExecutor,
    SerialExecutor,
    future_result,
    make_executor,
    validate_executor_spec,
)
from repro.exec.shm import ShmArena, ShmHandle

__all__ = [
    "KernelExecutor",
    "SerialExecutor",
    "PooledExecutor",
    "ProcessExecutor",
    "EXECUTOR_KINDS",
    "FirstOutcome",
    "ShmArena",
    "ShmHandle",
    "make_executor",
    "validate_executor_spec",
    "future_result",
]
