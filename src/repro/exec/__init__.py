"""Kernel execution layer: serial, thread-pooled, and process-pooled
execution of independent kernel calls (§6's "different threads"), shared
by the scheduler, the parallel verifier, and scheduled policy training.
Process submissions cross as picklable descriptors (:mod:`repro.exec.calls`)
that ship each network once per worker."""

from repro.exec.executor import (
    EXECUTOR_KINDS,
    FirstOutcome,
    KernelExecutor,
    PooledExecutor,
    ProcessExecutor,
    SerialExecutor,
    future_result,
    make_executor,
    validate_executor_spec,
)

__all__ = [
    "KernelExecutor",
    "SerialExecutor",
    "PooledExecutor",
    "ProcessExecutor",
    "EXECUTOR_KINDS",
    "FirstOutcome",
    "make_executor",
    "validate_executor_spec",
    "future_result",
]
