"""Kernel execution layer: serial and thread-pooled execution of
independent kernel calls (§6's "different threads"), shared by the
scheduler, the parallel verifier, and scheduled policy training."""

from repro.exec.executor import (
    FirstOutcome,
    KernelExecutor,
    PooledExecutor,
    SerialExecutor,
    future_result,
    make_executor,
)

__all__ = [
    "KernelExecutor",
    "SerialExecutor",
    "PooledExecutor",
    "FirstOutcome",
    "make_executor",
    "future_result",
]
