"""Picklable kernel-call descriptors: how kernel calls cross processes.

A :class:`~repro.exec.executor.ProcessExecutor` cannot ship closures, and
naively pickling a kernel call would serialize the whole network — hundreds
of kilobytes of weights — into every submission.  This module is the
boundary layer that makes process execution cheap and faithful:

- **Descriptors.**  :func:`marshal_call` recognizes the kernel calls the
  engines actually submit (fused PGD, fused multi-label Analyze, solo
  verification jobs, parallel-verifier sweep chunks) and rewrites each
  into a :class:`KernelCall`: the name of a module-level entry point plus
  a payload of plain arrays, config dicts, and small picklable objects.
  Unknown calls return ``None`` and the executor falls back to plain
  pickling, so any module-level function with picklable arguments still
  works.

- **Ship the network once per worker.**  The parent-side
  :class:`NetworkStore` writes each distinct network to a spill file at
  most once (named by its :func:`~repro.nn.serialize.network_digest`
  content address) and descriptors carry only the tiny
  :class:`NetworkHandle`.  Worker-side, :func:`resolve_network` keeps a
  per-process deserialization cache keyed on the digest, so each worker
  pays one ``load_network`` per distinct network per lifetime — not one
  per call.

- **Large operands ride shared memory.**  The executor's
  :class:`~repro.exec.shm.ShmArena` swaps big ndarray payload values for
  :class:`~repro.exec.shm.ShmHandle` descriptors after marshalling;
  :func:`run_kernel_call` materializes them before dispatch, so entry
  points only ever see plain arrays.

- **Entry points return caller-visible values.**  A descriptor's entry
  point produces exactly what the original function would have returned
  (bitwise — ``.npz`` round-trips and pickle both preserve float64 bit
  patterns), with one deliberate exception: analyze entries drop the
  per-row abstract output elements (``AnalysisResult.output is None``),
  because no engine consumes them and a powerset output is a ``(T, k, n)``
  stack whose pickling would dwarf the kernel it rode in on.
"""

from __future__ import annotations

import atexit
import importlib
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.backend import active as _active_backend
from repro.backend import use_backend as _use_backend
from repro.exec.shm import ShmHandle, resolve_payload
from repro.nn.serialize import load_network, network_digest, save_network
from repro.obs.metrics import registry


@dataclass(frozen=True)
class NetworkHandle:
    """A network's content address plus where a worker can load it."""

    digest: str
    path: str


class NetworkStore:
    """Parent-side spill directory: each distinct network written once.

    Owned by the :class:`~repro.exec.executor.ProcessExecutor`; closed
    (and its directory removed) on executor shutdown.  Keyed by content
    digest — :func:`~repro.nn.serialize.network_digest` memoizes on the
    Network instance itself, so repeat lookups cost a dict probe and
    aliased copies of one network share a single spill file.
    """

    def __init__(self) -> None:
        self._dir = Path(tempfile.mkdtemp(prefix="repro-exec-nets-"))
        self._handles: dict[str, NetworkHandle] = {}
        # Backstop for parents that never shut their executor down: a
        # long-running training loop churning pools must not accumulate
        # one spill directory per pool on disk past process exit.
        atexit.register(self.close)

    def handle(self, network) -> NetworkHandle:
        digest = network_digest(network)
        handle = self._handles.get(digest)
        if handle is None:
            path = self._dir / f"{digest}.npz"
            if not path.exists():
                save_network(network, path)
            handle = NetworkHandle(digest, str(path))
            self._handles[digest] = handle
        return handle

    def close(self) -> None:
        self._handles.clear()
        shutil.rmtree(self._dir, ignore_errors=True)
        atexit.unregister(self.close)


#: Worker-side cache: one deserialized network per digest per process.
_NETWORK_CACHE: dict[str, object] = {}


def resolve_network(handle: NetworkHandle):
    """The handle's network, loaded at most once per worker process."""
    network = _NETWORK_CACHE.get(handle.digest)
    if network is None:
        network = load_network(handle.path)
        _NETWORK_CACHE[handle.digest] = network
    return network


@dataclass(frozen=True)
class KernelCall:
    """One marshalled kernel call: entry-point name plus plain payload.

    ``submitted_unix`` is the parent's wall-clock submit time
    (``time.time()`` — comparable across processes on one host, unlike
    ``perf_counter``); the worker reports the call's queue wait from it.

    ``backend`` is the array backend active when the call was
    marshalled; :func:`run_kernel_call` re-enters it on the worker so a
    call's precision crosses the process boundary with the call, not via
    ambient worker state.
    """

    entry: str  # "module.path:function"
    payload: dict
    submitted_unix: float | None = None
    backend: str = "numpy64"


@dataclass(frozen=True)
class ObsEnvelope:
    """A descriptor call's result plus its worker-side observability.

    ``counters`` is the worker registry's counter delta across the entry
    point (kernel batches, fused-kernel work, shm attaches — everything
    a worker accumulates); the parent's
    :class:`~repro.exec.executor._EnvelopeFuture` merges it on
    completion, which is what makes a Process run's merged totals equal
    a Serial run's.  ``wait_s`` is the submit→start queue wait measured
    against :attr:`KernelCall.submitted_unix`.
    """

    value: object
    counters: dict
    wait_s: float | None = None


_ENTRY_CACHE: dict[str, Callable] = {}


def run_kernel_call(call: KernelCall) -> ObsEnvelope:
    """Worker-side dispatcher: resolve the entry point and run it.

    Shared-memory operands (:class:`~repro.exec.shm.ShmHandle` payload
    values) are materialized here, before the entry point runs, so entry
    points only ever see plain arrays.  The result rides back inside an
    :class:`ObsEnvelope` carrying the worker's counter delta across the
    call (snapshot taken before operand resolution, so shm-transport
    counters ride too); the executor unwraps it before callers see the
    future's value.
    """
    fn = _ENTRY_CACHE.get(call.entry)
    if fn is None:
        module_name, _, attr = call.entry.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        _ENTRY_CACHE[call.entry] = fn
    wait_s = None
    if call.submitted_unix is not None:
        wait_s = max(0.0, time.time() - call.submitted_unix)
    obs = registry()
    before = obs.counters_snapshot()
    payload = call.payload
    if any(isinstance(value, ShmHandle) for value in payload.values()):
        payload = resolve_payload(payload)
    with _use_backend(call.backend):
        value = fn(payload)
    return ObsEnvelope(value, obs.counters_since(before), wait_s)


# ----------------------------------------------------------------------
# Parent-side marshalling
# ----------------------------------------------------------------------


def _stack_boxes(regions) -> tuple[np.ndarray, np.ndarray]:
    """Region boxes as two dense ``(R, n)`` arrays (the plain-array form)."""
    return (
        np.stack([region.low for region in regions]),
        np.stack([region.high for region in regions]),
    )


def _marshal_pgd(args, kwargs, store: NetworkStore) -> KernelCall | None:
    """``pgd_minimize_batch(objective, regions, config, rngs, deadline)``."""
    from repro.attack.objective import (
        MarginObjective,
        MultiLabelMarginObjective,
    )

    if kwargs or len(args) != 5:
        return None
    objective, regions, config, rngs, deadline = args
    if isinstance(objective, MultiLabelMarginObjective):
        labels, multi = np.asarray(objective.labels), True
    elif isinstance(objective, MarginObjective):
        labels, multi = int(objective.label), False
    else:
        return None
    if not isinstance(rngs, (list, tuple)):
        return None  # shared-generator spawning must happen caller-side
    lows, highs = _stack_boxes(regions)
    return KernelCall(
        "repro.attack.pgd:pgd_minimize_entry",
        {
            "network": store.handle(objective.network),
            "labels": labels,
            "multi": multi,
            "lows": lows,
            "highs": highs,
            # The whole frozen dataclass, not a field-by-field copy: a
            # future PGDConfig knob must never silently reset to its
            # default on the process path only.
            "config": config,
            "rngs": list(rngs),
            "deadline": deadline,
        },
    )


def _marshal_analyze_multi(args, kwargs, store: NetworkStore) -> KernelCall | None:
    """``analyze_batch_multi(network, regions, labels, domain, deadline)``."""
    if kwargs or len(args) not in (4, 5):
        return None
    network, regions, labels, domain = args[:4]
    deadline = args[4] if len(args) == 5 else None
    lows, highs = _stack_boxes(regions)
    return KernelCall(
        "repro.abstract.analyzer:analyze_multi_entry",
        {
            "network": store.handle(network),
            "lows": lows,
            "highs": highs,
            "labels": np.asarray(labels, dtype=np.int64),
            "domain": (domain.base, domain.disjuncts),
            "deadline": deadline,
        },
    )


def _marshal_analyze_checkpointed(
    args, kwargs, store: NetworkStore
) -> KernelCall | None:
    """``analyze_batch_checkpointed(network, regions, labels, domain,
    deadline, resume, capture_boundaries)``.

    The resume record's arrays are flattened into top-level
    ``prefix_state_<name>`` payload values so the executor's
    shared-memory arena can swap them for handles (handles are resolved
    only at payload top level); the small descriptor fields travel as a
    ``resume_meta`` dict.  :func:`analyze_checkpointed_entry` reassembles
    the :class:`~repro.abstract.checkpoint.PrefixBounds` worker-side.
    """
    if kwargs or len(args) != 7:
        return None
    network, regions, labels, domain, deadline, resume, boundaries = args
    lows, highs = _stack_boxes(regions)
    payload = {
        "network": store.handle(network),
        "lows": lows,
        "highs": highs,
        "labels": np.asarray(labels, dtype=np.int64),
        "domain": (domain.base, domain.disjuncts),
        "deadline": deadline,
        "capture_boundaries": list(boundaries),
        "resume_meta": None,
    }
    if resume is not None:
        payload["resume_meta"] = {
            "boundary": resume.boundary,
            "op_count": resume.op_count,
            "prefix_digest": resume.prefix_digest,
            "regions_digest": resume.regions_digest,
            "domain": tuple(resume.domain),
            "backend": resume.backend,
            "kind": resume.kind,
            "meta": resume.meta,
        }
        for name, array in resume.arrays.items():
            payload[f"prefix_state_{name}"] = array
    return KernelCall(
        "repro.abstract.analyzer:analyze_checkpointed_entry", payload
    )


def _marshal_sweep_chunk(args, kwargs, store: NetworkStore) -> KernelCall | None:
    """``sweep_chunk(network, policy, config, prop, chunk, deadline[, stop])``.

    The trailing ``stop`` flag is advisory thread-shared state (see
    :func:`repro.core.parallel.sweep_chunk`); it cannot pickle and is
    deliberately not transported — a worker without it just runs the
    sweep, which the coordinator already tolerates.
    """
    if kwargs or len(args) not in (6, 7):
        return None
    network, policy, config, prop, chunk, deadline = args[:6]
    return KernelCall(
        "repro.core.parallel:sweep_chunk_entry",
        {
            "network": store.handle(network),
            "policy": policy,
            "config": config,
            "prop": prop,
            "chunk": chunk,
            "deadline": deadline,
        },
    )


def _marshal_solo_verify(args, kwargs, store: NetworkStore) -> KernelCall | None:
    """``solo_verify(job)`` — the sequential engine's whole-job unit."""
    if kwargs or len(args) != 1:
        return None
    job = args[0]
    return KernelCall(
        "repro.sched.scheduler:solo_verify_entry",
        {
            "network": store.handle(job.network),
            "prop": job.prop,
            "config": job.config,
            "policy": job.policy,
            "seed": job.seed,
        },
    )


#: Known kernel calls, keyed by (module, qualname) so registration never
#: imports the heavy engine modules (workers import only what they run).
_MARSHALLERS: dict[tuple[str, str], Callable] = {
    ("repro.attack.pgd", "pgd_minimize_batch"): _marshal_pgd,
    ("repro.abstract.analyzer", "analyze_batch_multi"): _marshal_analyze_multi,
    (
        "repro.abstract.analyzer",
        "analyze_batch_checkpointed",
    ): _marshal_analyze_checkpointed,
    ("repro.core.parallel", "sweep_chunk"): _marshal_sweep_chunk,
    ("repro.sched.scheduler", "solo_verify"): _marshal_solo_verify,
}


def marshal_call(
    fn: Callable, args: tuple, kwargs: dict, store: NetworkStore
) -> KernelCall | None:
    """Rewrite a known kernel call into a :class:`KernelCall` descriptor.

    Returns ``None`` for calls this layer does not recognize (including
    known functions invoked with an unexpected shape); the executor then
    falls back to plain pickling.
    """
    key = (getattr(fn, "__module__", ""), getattr(fn, "__qualname__", ""))
    marshaller = _MARSHALLERS.get(key)
    if marshaller is None:
        return None
    call = marshaller(args, kwargs, store)
    if call is None:
        return None
    # Stamp the marshalling thread's active backend so the worker runs
    # the call at the precision the caller chose, not its own default.
    name = _active_backend().name
    return call if call.backend == name else replace(call, backend=name)
