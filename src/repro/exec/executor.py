"""The kernel execution layer: where batched kernel calls actually run.

The paper's §6 observes that "different calls to the abstract interpreter
can be run on different threads".  Every engine in this codebase reduces
its work to *independent kernel calls* — a fused PGD sweep here, a batched
Analyze group there — that share no arrays and may therefore run on any
core.  This module is the one place that decides *where* such calls run:

- :class:`SerialExecutor` runs each call inline at submission, on the
  caller's thread.  Submission order is execution order, making it the
  reference for every executor-equivalence test.
- :class:`PooledExecutor` hands calls to a ``ThreadPoolExecutor``.  numpy
  releases the GIL inside the dense kernels where verification time is
  spent, so independent GEMM-shaped calls genuinely overlap on multi-core
  hosts.
- :class:`ProcessExecutor` hands calls to a spawn-based process pool.
  The zonotope/powerset split+join contraction — the hottest path on
  learned-policy workloads — is Python-loop-heavy and serializes under
  threads; processes sidestep the GIL entirely.  Known kernel calls cross
  the boundary as picklable descriptors (:mod:`repro.exec.calls`): the
  network ships once per worker via its content digest, operands travel
  as plain arrays and config dicts, and each worker pins its BLAS pools
  to one thread so pooled runs neither oversubscribe the host nor perturb
  GEMM rounding.

**Reproducibility contract.**  An executor never changes *what* a call
computes — only which core computes it.  Callers keep every semantic
decision on their own thread: they build the call's operands (including
all randomness) before submitting, and they consume results in
deterministic (submission) order.  Under that discipline a pooled run is
bitwise identical to a serial run; the scheduler's executor-equivalence
matrix pins this.

**Failure plumbing.**  Engines that race many calls against a single
terminal outcome (a counterexample settles the whole query) coordinate
through :class:`FirstOutcome` — first writer wins, everyone else observes
the stop flag — and retire the backlog with
:meth:`KernelExecutor.cancel_pending`, which drops not-yet-started calls
instead of letting every pending chunk run to completion.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterable

from repro.obs.metrics import registry
from repro.obs.trace import tracer

#: ``--executor`` menu shared by the CLI and :func:`make_executor`.
EXECUTOR_KINDS = ("serial", "pooled", "process")

#: Environment knobs that size the BLAS/OpenMP thread pools.  Process
#: workers pin all of them to one thread: ``workers`` single-threaded
#: processes use exactly the cores they are given (no oversubscription),
#: and every GEMM a worker runs has the same reduction order a serial
#: single-threaded run would use (no rounding perturbation).
_BLAS_THREAD_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def _pin_worker_blas() -> None:
    """Child-process initializer: force single-threaded BLAS pools.

    Runs in the worker before any kernel call.  The authoritative pinning
    actually happens through environment *inheritance* — the parent sets
    the variables before the child is spawned, so numpy's BLAS reads them
    at load — but re-asserting them here keeps workers correct even if a
    library re-reads the environment lazily.
    """
    for var in _BLAS_THREAD_VARS:
        os.environ[var] = "1"


# Parent-side BLAS pinning is refcounted across executors: process pools
# spawn workers lazily on demand, so the variables must stay exported as
# long as *any* ProcessExecutor lives, and the pre-existing values are
# restored only when the last one shuts down.
_PIN_LOCK = threading.Lock()
_PIN_DEPTH = 0
_PIN_SAVED: dict[str, str | None] = {}


def _push_blas_pins() -> None:
    global _PIN_DEPTH
    with _PIN_LOCK:
        if _PIN_DEPTH == 0:
            for var in _BLAS_THREAD_VARS:
                _PIN_SAVED[var] = os.environ.get(var)
                os.environ[var] = "1"
        _PIN_DEPTH += 1


def _pop_blas_pins() -> None:
    global _PIN_DEPTH
    with _PIN_LOCK:
        _PIN_DEPTH -= 1
        if _PIN_DEPTH == 0:
            for var, value in _PIN_SAVED.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
            _PIN_SAVED.clear()


class KernelExecutor(ABC):
    """Where kernel calls run.  See the module docstring for the contract.

    Futures returned by :meth:`submit` follow the
    :class:`concurrent.futures.Future` surface used here: ``result()``,
    ``cancel()``, ``cancelled()``, ``done()``.
    """

    #: Report / bench identifier (``"serial"`` or ``"pooled"``).
    name: str = ""
    #: Worker count the executor was built with (1 for serial).
    workers: int = 1

    @abstractmethod
    def submit(self, fn: Callable, /, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)``; returns a future."""

    def _observe_submit(self, future, label: str):
        """Meter one submission: queue depth, submit→done latency, spans.

        Every executor kind routes its futures through here.  The gauge
        ``exec.{name}.queue_depth`` tracks submitted-but-unfinished
        calls, the ``exec.{name}.latency_s`` histogram records each
        call's submit→done extent, and — when tracing is on — the done
        callback emits an ``exec.{name}.call`` complete event stamped
        with the submit time and the *submitting* thread id, so pool
        calls render on the lane that issued them.  Metric bookkeeping
        runs on whatever thread completes the future; counters and
        gauges are lock-guarded, and nothing here feeds control flow.
        """
        obs = registry()
        obs.inc(f"exec.{self.name}.submitted")
        obs.adjust_gauge(f"exec.{self.name}.queue_depth", 1)
        submitted_at = time.perf_counter()
        submit_tid = threading.get_ident()

        def _done(_future):
            duration = time.perf_counter() - submitted_at
            obs.adjust_gauge(f"exec.{self.name}.queue_depth", -1)
            obs.inc(f"exec.{self.name}.completed")
            obs.observe(f"exec.{self.name}.latency_s", duration)
            active = tracer()
            if active.enabled:
                active.add_complete(
                    f"exec.{self.name}.call",
                    "exec",
                    submitted_at,
                    duration,
                    tid=submit_tid,
                    args={"fn": label},
                )

        future.add_done_callback(_done)
        return future

    @abstractmethod
    def wait_any(self, futures: set) -> tuple[set, set]:
        """Block until at least one future completes.

        Returns ``(done, pending)``.  Cancelled futures count as done
        (their ``result()`` raises ``CancelledError``; use
        :func:`future_result` to treat them as empty).
        """

    def run_all(self, calls: Iterable[tuple]) -> list:
        """Submit every ``(fn, *args)`` call, then gather results in
        submission order.

        The deterministic fan-out/fan-in primitive the scheduler's fused
        sweeps are built on: all calls are in flight before the first
        result is awaited, and the caller observes results in exactly the
        order it would have produced them serially.  The first exception
        (in submission order) propagates after every call has finished,
        so no kernel is left running against freed state.
        """
        futures = [self.submit(fn, *args) for fn, *args in calls]
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def cancel_pending(self, futures: set) -> set:
        """Cancel every future that has not started; return the rest.

        The falsification-latency path: once a terminal outcome is known,
        queued-but-unstarted calls are dropped immediately instead of each
        being scheduled just to notice the stop flag.  Futures already
        running (or inline-completed) cannot be cancelled and are returned
        for the caller to drain.
        """
        remaining = set()
        for future in futures:
            if not future.cancel():
                remaining.add(future)
        return remaining

    def shutdown(self, cancel_pending: bool = False) -> None:
        """Release the executor's resources (idempotent)."""

    def __enter__(self) -> "KernelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _call_label(fn: Callable) -> str:
    """A short human-readable name for a submitted callable."""
    return (
        getattr(fn, "__qualname__", "")
        or getattr(fn, "__name__", "")
        or repr(fn)
    )


class SerialExecutor(KernelExecutor):
    """Runs every call inline at submission, on the caller's thread."""

    name = "serial"
    workers = 1

    def submit(self, fn: Callable, /, *args, **kwargs):
        future: Future = Future()
        # Observe before running: inline execution completes the future
        # inside submit, and the done callback must already be attached
        # for the latency histogram to see the call's true extent.
        self._observe_submit(future, _call_label(fn))
        # Inline calls never queue; the zero keeps the wait histogram's
        # schema uniform across executor kinds.
        registry().observe(f"exec.{self.name}.wait_s", 0.0)
        # Mirror Future semantics exactly (result() re-raises) so callers
        # cannot tell serial and pooled futures apart.
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - stored, not swallowed
            future.set_exception(exc)
        return future

    def wait_any(self, futures: set) -> tuple[set, set]:
        return set(futures), set()


def _run_after_wait(fn, name, submitted_at, args, kwargs):
    """Thread-pool work item: record queue wait, then run the call.

    Runs on the pool thread of the same process, so perf_counter readings
    are comparable with the submit-side stamp and the registry is shared.
    """
    registry().observe(
        f"exec.{name}.wait_s", time.perf_counter() - submitted_at
    )
    return fn(*args, **kwargs)


class PooledExecutor(KernelExecutor):
    """Runs calls on a thread pool (the §6 "different threads").

    The pool is created lazily on first submit and torn down by
    :meth:`shutdown` (or the context manager).  ``workers=1`` is a valid
    degenerate pool: same thread-hop overheads as a wide pool, no
    concurrency — the honest baseline for worker-scaling measurements.
    """

    name = "pooled"

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()

    def submit(self, fn: Callable, /, *args, **kwargs):
        with self._lock:
            # A shut-down executor must stay dead: silently re-creating
            # the pool here would leak one thread pool per stray submit
            # in long-lived runs, with nobody left owning its shutdown.
            if self._closed:
                raise RuntimeError(
                    "cannot submit to a PooledExecutor after shutdown()"
                )
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-kernel",
                )
            pool = self._pool
        future = pool.submit(
            _run_after_wait, fn, self.name, time.perf_counter(), args, kwargs
        )
        return self._observe_submit(future, _call_label(fn))

    def wait_any(self, futures: set) -> tuple[set, set]:
        done, pending = wait(futures, return_when=FIRST_COMPLETED)
        return set(done), set(pending)

    def shutdown(self, cancel_pending: bool = False) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel_pending)


class _EnvelopeFuture(Future):
    """A real Future chained onto a process-pool future, unwrapping
    :class:`~repro.exec.calls.ObsEnvelope` results.

    Descriptor calls return an envelope — the entry point's value plus
    the worker-side counter delta — and the parent must (a) merge the
    delta into its registry and (b) hand callers the bare value.  A plain
    proxy object cannot do this: ``concurrent.futures.wait`` (the
    executor's ``wait_any``) inspects Future internals, so the unwrapper
    must *be* a Future.  Chaining via ``add_done_callback`` keeps every
    transition synchronous with the inner future's own completion: the
    merge happens before any ``result()`` on this future returns, which
    is what makes a run's metrics delta complete by the time its report
    is assembled.  ``cancel()`` forwards to the inner future, so
    ``cancel_pending`` semantics are unchanged.
    """

    def __init__(self, inner: Future, executor_name: str) -> None:
        super().__init__()
        self._inner = inner
        self._executor_name = executor_name
        inner.add_done_callback(self._chain)

    def cancel(self) -> bool:
        return self._inner.cancel()

    def _chain(self, inner: Future) -> None:
        if inner.cancelled():
            # Mirror the cancellation onto this future so waiters wake
            # and result() raises CancelledError, exactly as the inner
            # future would have.
            super().cancel()
            self.set_running_or_notify_cancel()
            return
        exc = inner.exception()
        if exc is not None:
            self.set_exception(exc)
            return
        value = inner.result()
        from repro.exec.calls import ObsEnvelope

        if isinstance(value, ObsEnvelope):
            obs = registry()
            if value.counters:
                obs.merge_counters(value.counters)
            if value.wait_s is not None:
                obs.observe(
                    f"exec.{self._executor_name}.wait_s", value.wait_s
                )
            value = value.value
        self.set_result(value)


class ProcessExecutor(KernelExecutor):
    """Runs calls on a spawn-based process pool (GIL-free parallelism).

    Thread pools overlap only the GIL-dropping dense kernels; the
    zonotope/powerset split+join contraction spends its time in Python
    loops and serializes under threads.  Process workers run those calls
    truly concurrently.  Two mechanisms make the boundary cheap and
    faithful:

    - **Descriptor marshalling** (:mod:`repro.exec.calls`): known kernel
      calls are rewritten into picklable descriptors — the network is
      replaced by its content digest and shipped to each worker at most
      once (a per-worker deserialization cache rebuilds it), operands
      travel as plain arrays and config dicts.  Unknown calls fall back
      to plain pickling, so any module-level function with picklable
      arguments still works.
    - **BLAS pinning**: the parent exports ``OMP_NUM_THREADS=1`` (and
      friends) around worker spawn, so every worker's BLAS is
      single-threaded — ``workers`` processes use ``workers`` cores, and
      GEMM reduction order matches a serial run bitwise.

    Descriptor operands above ``shm_threshold`` bytes additionally cross
    the boundary as ``multiprocessing.shared_memory`` handles instead of
    pickle bytes (:mod:`repro.exec.shm`): the parent-owned
    :class:`~repro.exec.shm.ShmArena` writes each array into a segment
    once, releases it when the call's future completes, and unlinks
    every live segment on :meth:`shutdown` — including segments whose
    worker died mid-call, whose futures still complete with
    ``BrokenProcessPool``.

    The pool is created lazily on first submit and torn down by
    :meth:`shutdown`; like :class:`PooledExecutor`, submits after
    shutdown raise.  A worker that dies mid-call (OOM-killed, crashed
    extension) surfaces as ``BrokenProcessPool`` on its futures rather
    than hanging the run.
    """

    name = "process"

    def __init__(
        self, workers: int = 4, shm_threshold: int | None = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.shm_threshold = shm_threshold
        self._pool: ProcessPoolExecutor | None = None
        self._store = None  # parent-side network spill (repro.exec.calls)
        self._shm = None  # parent-side segment registry (repro.exec.shm)
        self._closed = False
        self._pinned = False
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Create the pool (and the network store) under the lock.

        BLAS pinning must be in the environment *before* a worker spawns
        (spawned children read it when numpy loads), and workers may
        spawn lazily on any later submit — so the variables stay exported
        (refcounted across executors) until :meth:`shutdown`.
        """
        if self._pool is None:
            from repro.exec.calls import NetworkStore
            from repro.exec.shm import ShmArena

            _push_blas_pins()
            self._pinned = True
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_pin_worker_blas,
            )
            self._store = NetworkStore()
            self._shm = ShmArena(self.shm_threshold)
        return self._pool

    def submit(self, fn: Callable, /, *args, **kwargs):
        from repro.exec.calls import KernelCall, marshal_call, run_kernel_call

        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "cannot submit to a ProcessExecutor after shutdown()"
                )
            pool = self._ensure_pool()
            call = marshal_call(fn, args, kwargs, self._store)
            shm = self._shm
        if call is not None:
            payload, segments = shm.wrap_payload(call.payload)
            # Stamp the submission wall-clock time into the descriptor:
            # perf_counter is not comparable across processes, but
            # time.time() is (same host), so the worker can report how
            # long the call waited before starting.
            call = KernelCall(
                call.entry,
                payload,
                submitted_unix=time.time(),
                backend=call.backend,
            )
            inner = pool.submit(run_kernel_call, call)
            if segments:
                # Release the call's segments when its future completes —
                # also on cancellation and on worker death, both of which
                # complete the future.  The callback must never raise.
                inner.add_done_callback(
                    lambda _f, names=segments: shm.release(names)
                )
            # Callers get the unwrapping future: the worker's counter
            # delta merges into the parent registry on completion, and
            # result() yields the entry point's bare value.
            return self._observe_submit(
                _EnvelopeFuture(inner, self.name), call.entry
            )
        return self._observe_submit(
            pool.submit(fn, *args, **kwargs), _call_label(fn)
        )

    def wait_any(self, futures: set) -> tuple[set, set]:
        done, pending = wait(futures, return_when=FIRST_COMPLETED)
        return set(done), set(pending)

    def shutdown(self, cancel_pending: bool = False) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            store, self._store = self._store, None
            shm, self._shm = self._shm, None
            pinned, self._pinned = self._pinned, False
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel_pending)
        if store is not None:
            store.close()
        if shm is not None:
            shm.close()
        if pinned:
            _pop_blas_pins()


def make_executor(
    executor: KernelExecutor | None = None,
    workers: int = 1,
    kind: str | None = None,
    shm_threshold: int | None = None,
) -> tuple[KernelExecutor, bool]:
    """Normalize an (executor, workers, kind) triple into ``(executor, owned)``.

    Engines accept either a ready executor (caller owns its lifecycle) or
    a plain ``workers`` count plus an optional ``kind`` from
    :data:`EXECUTOR_KINDS`; in the latter case the engine builds one and
    must shut it down after the run (``owned=True``).  With no ``kind``
    the historical default applies: serial for ``workers=1``, pooled
    otherwise.  ``shm_threshold`` configures the process executor's
    shared-memory operand transport (see :mod:`repro.exec.shm`); it only
    applies to executors built here with ``kind="process"``.
    """
    if executor is not None:
        if kind is not None:
            raise ValueError(
                "pass either a ready executor or an executor kind, not both"
            )
        return executor, False
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if kind is None:
        kind = "serial" if workers == 1 else "pooled"
    if kind == "serial":
        if workers != 1:
            raise ValueError(
                f"the serial executor runs on one worker, got workers={workers}"
            )
        return SerialExecutor(), True
    if kind == "pooled":
        return PooledExecutor(workers), True
    if kind == "process":
        return ProcessExecutor(workers, shm_threshold=shm_threshold), True
    raise ValueError(
        f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}"
    )


def validate_executor_spec(
    executor: KernelExecutor | None = None,
    workers: int = 1,
    kind: str | None = None,
    shm_threshold: int | None = None,
) -> None:
    """Raise the error :func:`make_executor` would, keeping nothing.

    Lets engines fail fast at construction on a bad (executor, workers,
    kind) combination — a bad CLI flag should not surface rounds into a
    run.  Safe because every executor constructor is side-effect-free
    until first submit (pools and spill dirs are lazy), so the probe
    costs nothing to build and discard.
    """
    built, owned = make_executor(
        executor, workers, kind=kind, shm_threshold=shm_threshold
    )
    if owned:
        built.shutdown()


def future_result(future, default=None):
    """``future.result()``, with cancelled futures yielding ``default``.

    Engines that cancel their backlog on a terminal outcome drain the
    remaining futures through this helper so a cancelled chunk reads as
    "no work produced" rather than an error.
    """
    try:
        return future.result()
    except CancelledError:
        return default


class FirstOutcome:
    """First-writer-wins outcome slot with a stop flag.

    The shared failure plumbing of every engine that races independent
    work against a single terminal answer (ParallelVerifier's frontier
    chunks; any one δ-counterexample settles the query): the first
    recorded outcome sticks, every later record is ignored, and the
    ``stop`` event tells in-flight work to bail early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._outcome = None
        self.stop = threading.Event()

    def record(self, outcome) -> bool:
        """Record ``outcome`` if none is set; always raises the stop flag.

        Returns True when this call's outcome won.
        """
        with self._lock:
            won = self._outcome is None
            if won:
                self._outcome = outcome
        self.stop.set()
        return won

    def is_set(self) -> bool:
        return self.stop.is_set()

    def get(self):
        """The winning outcome, or ``None`` when nothing terminal happened."""
        with self._lock:
            return self._outcome
