"""The kernel execution layer: where batched kernel calls actually run.

The paper's §6 observes that "different calls to the abstract interpreter
can be run on different threads".  Every engine in this codebase reduces
its work to *independent kernel calls* — a fused PGD sweep here, a batched
Analyze group there — that share no arrays and may therefore run on any
core.  This module is the one place that decides *where* such calls run:

- :class:`SerialExecutor` runs each call inline at submission, on the
  caller's thread.  Submission order is execution order, making it the
  reference for every executor-equivalence test.
- :class:`PooledExecutor` hands calls to a ``ThreadPoolExecutor``.  numpy
  releases the GIL inside the dense kernels where verification time is
  spent, so independent GEMM-shaped calls genuinely overlap on multi-core
  hosts.

**Reproducibility contract.**  An executor never changes *what* a call
computes — only which core computes it.  Callers keep every semantic
decision on their own thread: they build the call's operands (including
all randomness) before submitting, and they consume results in
deterministic (submission) order.  Under that discipline a pooled run is
bitwise identical to a serial run; the scheduler's executor-equivalence
matrix pins this.

**Failure plumbing.**  Engines that race many calls against a single
terminal outcome (a counterexample settles the whole query) coordinate
through :class:`FirstOutcome` — first writer wins, everyone else observes
the stop flag — and retire the backlog with
:meth:`KernelExecutor.cancel_pending`, which drops not-yet-started calls
instead of letting every pending chunk run to completion.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterable


class KernelExecutor(ABC):
    """Where kernel calls run.  See the module docstring for the contract.

    Futures returned by :meth:`submit` follow the
    :class:`concurrent.futures.Future` surface used here: ``result()``,
    ``cancel()``, ``cancelled()``, ``done()``.
    """

    #: Report / bench identifier (``"serial"`` or ``"pooled"``).
    name: str = ""
    #: Worker count the executor was built with (1 for serial).
    workers: int = 1

    @abstractmethod
    def submit(self, fn: Callable, /, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)``; returns a future."""

    @abstractmethod
    def wait_any(self, futures: set) -> tuple[set, set]:
        """Block until at least one future completes.

        Returns ``(done, pending)``.  Cancelled futures count as done
        (their ``result()`` raises ``CancelledError``; use
        :func:`future_result` to treat them as empty).
        """

    def run_all(self, calls: Iterable[tuple]) -> list:
        """Submit every ``(fn, *args)`` call, then gather results in
        submission order.

        The deterministic fan-out/fan-in primitive the scheduler's fused
        sweeps are built on: all calls are in flight before the first
        result is awaited, and the caller observes results in exactly the
        order it would have produced them serially.  The first exception
        (in submission order) propagates after every call has finished,
        so no kernel is left running against freed state.
        """
        futures = [self.submit(fn, *args) for fn, *args in calls]
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def cancel_pending(self, futures: set) -> set:
        """Cancel every future that has not started; return the rest.

        The falsification-latency path: once a terminal outcome is known,
        queued-but-unstarted calls are dropped immediately instead of each
        being scheduled just to notice the stop flag.  Futures already
        running (or inline-completed) cannot be cancelled and are returned
        for the caller to drain.
        """
        remaining = set()
        for future in futures:
            if not future.cancel():
                remaining.add(future)
        return remaining

    def shutdown(self, cancel_pending: bool = False) -> None:
        """Release the executor's resources (idempotent)."""

    def __enter__(self) -> "KernelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(KernelExecutor):
    """Runs every call inline at submission, on the caller's thread."""

    name = "serial"
    workers = 1

    def submit(self, fn: Callable, /, *args, **kwargs):
        future: Future = Future()
        # Mirror Future semantics exactly (result() re-raises) so callers
        # cannot tell serial and pooled futures apart.
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - stored, not swallowed
            future.set_exception(exc)
        return future

    def wait_any(self, futures: set) -> tuple[set, set]:
        return set(futures), set()


class PooledExecutor(KernelExecutor):
    """Runs calls on a thread pool (the §6 "different threads").

    The pool is created lazily on first submit and torn down by
    :meth:`shutdown` (or the context manager).  ``workers=1`` is a valid
    degenerate pool: same thread-hop overheads as a wide pool, no
    concurrency — the honest baseline for worker-scaling measurements.
    """

    name = "pooled"

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def submit(self, fn: Callable, /, *args, **kwargs):
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-kernel",
                )
            pool = self._pool
        return pool.submit(fn, *args, **kwargs)

    def wait_any(self, futures: set) -> tuple[set, set]:
        done, pending = wait(futures, return_when=FIRST_COMPLETED)
        return set(done), set(pending)

    def shutdown(self, cancel_pending: bool = False) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel_pending)


def make_executor(
    executor: KernelExecutor | None = None, workers: int = 1
) -> tuple[KernelExecutor, bool]:
    """Normalize an (executor, workers) pair into ``(executor, owned)``.

    Engines accept either a ready executor (caller owns its lifecycle) or
    a plain ``workers`` count; in the latter case the engine builds one —
    serial for ``workers=1``, pooled otherwise — and must shut it down
    after the run (``owned=True``).
    """
    if executor is not None:
        return executor, False
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return SerialExecutor(), True
    return PooledExecutor(workers), True


def future_result(future, default=None):
    """``future.result()``, with cancelled futures yielding ``default``.

    Engines that cancel their backlog on a terminal outcome drain the
    remaining futures through this helper so a cancelled chunk reads as
    "no work produced" rather than an error.
    """
    try:
        return future.result()
    except CancelledError:
        return default


class FirstOutcome:
    """First-writer-wins outcome slot with a stop flag.

    The shared failure plumbing of every engine that races independent
    work against a single terminal answer (ParallelVerifier's frontier
    chunks; any one δ-counterexample settles the query): the first
    recorded outcome sticks, every later record is ignored, and the
    ``stop`` event tells in-flight work to bail early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._outcome = None
        self.stop = threading.Event()

    def record(self, outcome) -> bool:
        """Record ``outcome`` if none is set; always raises the stop flag.

        Returns True when this call's outcome won.
        """
        with self._lock:
            won = self._outcome is None
            if won:
                self._outcome = outcome
        self.stop.set()
        return won

    def is_set(self) -> bool:
        return self.stop.is_set()

    def get(self):
        """The winning outcome, or ``None`` when nothing terminal happened."""
        with self._lock:
            return self._outcome
